(* Unit and property tests for the util substrate: byte codecs, heap,
   PRNG, statistics. *)

open Util

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Bits *)

let test_bits_roundtrip () =
  let b = Bytes.make 16 '\000' in
  Bits.set_u8 b 0 0xab;
  check "u8" 0xab (Bits.get_u8 b 0);
  Bits.set_u16 b 1 0xbeef;
  check "u16" 0xbeef (Bits.get_u16 b 1);
  Bits.set_u32 b 3 0xdeadbeef;
  check "u32" 0xdeadbeef (Bits.get_u32 b 3);
  Bits.set_u48 b 7 0xaabbccddeeff;
  check "u48" 0xaabbccddeeff (Bits.get_u48 b 7)

let test_bits_u64 () =
  let b = Bytes.make 8 '\000' in
  Bits.set_u64 b 0 0x0123456789abcdefL;
  Alcotest.(check int64) "u64" 0x0123456789abcdefL (Bits.get_u64 b 0)

let test_bits_big_endian () =
  let b = Bytes.make 4 '\000' in
  Bits.set_u32 b 0 0x01020304;
  check "msb first" 1 (Bits.get_u8 b 0);
  check "lsb last" 4 (Bits.get_u8 b 3)

let test_bits_checksum () =
  (* RFC 1071 example: checksum of the header with checksum zero, then
     verifying over the full header yields zero *)
  let b = Bytes.make 8 '\000' in
  Bits.set_u16 b 0 0x4500;
  Bits.set_u16 b 2 0x0073;
  Bits.set_u16 b 4 0x0000;
  Bits.set_u16 b 6 0x4011;
  let ck = Bits.ones_complement_sum b 0 8 in
  Bits.set_u16 b 4 ck;
  check "verifies to zero" 0 (Bits.ones_complement_sum b 0 8)

let test_bits_checksum_odd_length () =
  let b = Bytes.of_string "\x12\x34\x56" in
  (* odd trailing byte is padded on the right *)
  let expected = lnot (0x1234 + 0x5600) land 0xffff in
  check "odd" expected (Bits.ones_complement_sum b 0 3)

let test_hex_dump () =
  let b = Bytes.of_string "\x00\x01\x02" in
  Alcotest.(check string) "dump" "0000: 00 01 02 \n" (Bits.hex_dump b)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order;
  check "length preserved" 5 (Heap.length h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 1.0 "c";
  let _, x = Heap.pop h in
  let _, y = Heap.pop h in
  let _, z = Heap.pop h in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ x; y; z ]

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.check_raises "pop raises" Not_found (fun () ->
    ignore (Heap.pop (Heap.create () : int Heap.t)))

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 3.0 3;
  Heap.push h 1.0 1;
  let _, a = Heap.pop h in
  Heap.push h 2.0 2;
  Heap.push h 0.5 0;
  let _, b = Heap.pop h in
  let _, c = Heap.pop h in
  let _, d = Heap.pop h in
  Alcotest.(check (list int)) "interleaved" [ 1; 0; 2; 3 ] [ a; b; c; d ]

(* regression: pop and clear must null out vacated slots — the heap
   used to keep popped entries alive in its backing array, retaining
   every executed simulator event for the heap's lifetime *)
let test_heap_releases_popped () =
  let h = Heap.create () in
  let live = Weak.create 4 in
  List.iteri
    (fun i k ->
      let payload = ref (k, String.make 64 'p') in
      Weak.set live i (Some payload);
      Heap.push h k payload)
    [ 4.0; 2.0; 1.0; 3.0 ];
  (* pop two, clear the rest; no payload may survive a full GC *)
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collected" i)
      false (Weak.check live i)
  done;
  (* draining via pop alone must release too *)
  Heap.push h 1.0 (ref (1.0, "x"));
  Heap.push h 2.0 (ref (2.0, "y"));
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  let w = Weak.create 1 in
  let p = ref (9.0, "z") in
  Weak.set w 0 (Some p);
  Heap.push h 9.0 p;
  ignore (Heap.pop h);
  Gc.full_major ();
  Alcotest.(check bool) "fully popped payload collected" false (Weak.check w 0)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted key order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) keys;
      let drained = List.map fst (Heap.to_sorted_list h) in
      drained = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Timing wheel *)

let test_wheel_order () =
  let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
  List.iter
    (fun k -> Timing_wheel.push w k (int_of_float (k *. 10.0)))
    [ 0.5; 0.1; 0.3; 0.2; 0.4 ];
  check "length" 5 (Timing_wheel.length w);
  let order = List.map snd (Timing_wheel.drain_to_list w) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order

let test_wheel_fifo_ties () =
  let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
  Timing_wheel.push w 1.0 "a";
  Timing_wheel.push w 1.0 "b";
  Timing_wheel.push w 1.0 "c";
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    (List.map snd (Timing_wheel.drain_to_list w))

let test_wheel_overflow_migrates () =
  (* horizon is 16 ms; events at 1 s land in the overflow heap and must
     still come out in order, ties included *)
  let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
  Timing_wheel.push w 1.0 "far-a";
  Timing_wheel.push w 0.001 "near";
  Timing_wheel.push w 1.0 "far-b";
  Timing_wheel.push w 0.5 "mid";
  Alcotest.(check (list string)) "overflow drains in order"
    [ "near"; "mid"; "far-a"; "far-b" ]
    (List.map snd (Timing_wheel.drain_to_list w))

let test_wheel_pop_until () =
  let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
  (match Timing_wheel.pop_until w ~stop:1.0 with
   | `Empty -> ()
   | _ -> Alcotest.fail "expected `Empty");
  Timing_wheel.push w 2.0 "late";
  (match Timing_wheel.pop_until w ~stop:1.0 with
   | `Beyond -> ()
   | _ -> Alcotest.fail "expected `Beyond");
  (match Timing_wheel.pop_until w ~stop:3.0 with
   | `Event (k, "late") -> checkf "key" 2.0 k
   | _ -> Alcotest.fail "expected `Event");
  match Timing_wheel.pop_until w ~stop:3.0 with
  | `Empty -> ()
  | _ -> Alcotest.fail "expected `Empty after drain"

(* ISSUE 6 boundary audit regressions.  An entry whose tick is exactly
   at the horizon ([tick - base = nslots]) aliases the current base slot
   under the power-of-two mask; filing it into the wheel would let the
   next drain of that slot surface it a full revolution early.  [file]
   and [migrate_overflow] agree on strict [<], so it must stay in the
   overflow until the base advances — these tests pin that, and the
   same-instant FIFO order across the overflow->slot migration. *)

let test_wheel_horizon_boundary () =
  (* whole-second ticks make tick_of exact: no float-quantization noise *)
  let w = Timing_wheel.create ~tick:1.0 ~slots:16 () in
  (* 16.0 is exactly nslots ticks ahead of base 0: the aliasing case *)
  Timing_wheel.push w 16.0 "boundary";
  Timing_wheel.push w 5.0 "mid";
  Timing_wheel.push w 15.0 "edge";
  Alcotest.(check (list string))
    "boundary entry never jumps the intervening slots"
    [ "mid"; "edge"; "boundary" ]
    (List.map snd (Timing_wheel.drain_to_list w))

let test_wheel_horizon_boundary_fifo () =
  (* three same-instant entries beyond the horizon must keep insertion
     order through migration, and interleave correctly with an entry
     pushed directly once the base has advanced to their tick *)
  let w = Timing_wheel.create ~tick:1.0 ~slots:16 () in
  Timing_wheel.push w 20.0 "a";
  Timing_wheel.push w 20.0 "b";
  Timing_wheel.push w 1.0 "near";
  Timing_wheel.push w 20.0 "c";
  (match Timing_wheel.pop w with
   | _, "near" -> ()
   | _ -> Alcotest.fail "expected near first");
  (* base has jumped to tick 20 and a/b/c migrated; a fresh push at the
     same instant must come after them (global seq order) *)
  Timing_wheel.push w 20.0 "d";
  Alcotest.(check (list string)) "FIFO preserved across migration"
    [ "a"; "b"; "c"; "d" ]
    (List.map snd (Timing_wheel.drain_to_list w))

let test_wheel_pop_until_strict () =
  let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
  Timing_wheel.push w 1.0 "at-stop";
  (match Timing_wheel.pop_until ~strict:true w ~stop:1.0 with
   | `Beyond -> ()
   | _ -> Alcotest.fail "strict: entry at stop stays queued");
  (match Timing_wheel.pop_until w ~stop:1.0 with
   | `Event (_, "at-stop") -> ()
   | _ -> Alcotest.fail "inclusive: entry at stop pops");
  check "nothing left" 0 (Timing_wheel.length w)

(* the tentpole property: wheel and heap agree on execution order for
   any push/pop interleaving — ties (identical keys) resolved by
   insertion order in both.  Keys mix sub-tick, in-horizon and
   over-horizon values so every wheel stage is exercised. *)
let prop_wheel_heap_equivalent =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 120)
        (oneof
           [ (* push with key from a deliberately collision-happy set *)
             map
               (fun k -> `Push (float_of_int k *. 0.004))
               (oneof [ int_bound 8; int_bound 64; int_bound 5000 ]);
             return `Pop ]))
  in
  QCheck.Test.make
    ~name:"timing wheel == heap on any interleaving (ties included)"
    ~count:300 (QCheck.make gen)
    (fun ops ->
      let w = Timing_wheel.create ~tick:1e-3 ~slots:16 () in
      let h = Heap.create () in
      let id = ref 0 in
      let trace_w = ref [] and trace_h = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push k ->
            incr id;
            Timing_wheel.push w k !id;
            Heap.push h k !id
          | `Pop ->
            (match Timing_wheel.pop w with
             | exception Not_found -> ()
             | k, v -> trace_w := (k, v) :: !trace_w);
            (match Heap.pop h with
             | exception Not_found -> ()
             | k, v -> trace_h := (k, v) :: !trace_h))
        ops;
      List.iter (fun e -> trace_w := e :: !trace_w) (Timing_wheel.drain_to_list w);
      List.iter (fun e -> trace_h := e :: !trace_h) (Heap.to_sorted_list h);
      !trace_w = !trace_h)

(* ------------------------------------------------------------------ *)
(* Bufpool *)

let test_bufpool_reuse () =
  let p = Bufpool.create ~retain:4 () in
  let b = Bufpool.acquire p 100 in
  Alcotest.(check bool) "rounded up" true (Bytes.length b >= 100);
  Bufpool.release p b;
  check "retained" 1 (Bufpool.retained p);
  let b' = Bufpool.acquire p 50 in
  Alcotest.(check bool) "same storage reused" true (b == b');
  check "free list drained" 0 (Bufpool.retained p)

let test_bufpool_retain_bound () =
  let p = Bufpool.create ~retain:2 () in
  List.iter (fun b -> Bufpool.release p b)
    [ Bytes.create 64; Bytes.create 64; Bytes.create 64 ];
  check "drops past retain" 2 (Bufpool.retained p)

let test_bufpool_grow_preserves () =
  let p = Bufpool.create ~retain:4 () in
  let b = Bufpool.acquire p 64 in
  Bytes.fill b 0 (Bytes.length b) 'x';
  let g = Bufpool.grow p b 1000 in
  Alcotest.(check bool) "grew" true (Bytes.length g >= 1000);
  Alcotest.(check string) "prefix preserved" (String.make 64 'x')
    (Bytes.sub_string g 0 64);
  Alcotest.(check bool) "old buffer pooled" true (Bufpool.retained p >= 1);
  let same = Bufpool.grow p g 10 in
  Alcotest.(check bool) "no-op when big enough" true (same == g)

let test_bufpool_with_buf_releases () =
  let p = Bufpool.create ~retain:4 () in
  ignore (Bufpool.with_buf p 32 (fun _ -> 42));
  check "released on return" 1 (Bufpool.retained p);
  (try Bufpool.with_buf p 32 (fun _ -> failwith "boom")
   with Failure _ -> ());
  (* the exceptional call reacquired and re-released the same buffer *)
  check "released on exception" 1 (Bufpool.retained p)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_bounds () =
  let p = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let p = Prng.create 2 in
  for _ = 1 to 1000 do
    let v = Prng.float p 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_split_independent () =
  let p = Prng.create 3 in
  let q = Prng.split p in
  let xs = List.init 5 (fun _ -> Prng.int p 1000) in
  let ys = List.init 5 (fun _ -> Prng.int q 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_exponential_positive () =
  let p = Prng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential p ~mean:2.0 > 0.0)
  done

let test_prng_exponential_mean () =
  let p = Prng.create 5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 2" true (abs_float (mean -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let p = Prng.create 6 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_online_mean_var () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkf "mean" 5.0 (Stats.Online.mean o);
  Alcotest.(check (float 1e-6)) "sample variance" (32.0 /. 7.0)
    (Stats.Online.variance o);
  checkf "min" 2.0 (Stats.Online.min_value o);
  checkf "max" 9.0 (Stats.Online.max_value o)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p50" 3.0 (Stats.percentile xs 50.0);
  checkf "p100" 5.0 (Stats.percentile xs 100.0);
  checkf "p25" 2.0 (Stats.percentile xs 25.0);
  checkf "interp" 3.5 (Stats.percentile xs 62.5)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile [] 50.0));
  Alcotest.check_raises "range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [ 1.0 ] 101.0));
  (* nan has no rank: reject it rather than letting the sort scatter it *)
  Alcotest.check_raises "nan" (Invalid_argument "Stats.percentile: nan")
    (fun () -> ignore (Stats.percentile [ 1.0; Float.nan; 2.0 ] 50.0))

let test_percentile_float_order () =
  (* Float.compare (not polymorphic compare) must drive the sort: -0. and
     0. compare equal polymorphically but order deterministically here,
     and negatives sort before positives *)
  let xs = [ 0.0; -0.0; -1.0; 1.0 ] in
  checkf "min is -1" (-1.0) (Stats.percentile xs 0.0);
  checkf "max is 1" 1.0 (Stats.percentile xs 100.0);
  checkf "median straddles zero" 0.0 (Stats.percentile xs 50.0)

let test_jain () =
  checkf "equal is 1" 1.0 (Stats.jain_fairness [ 5.0; 5.0; 5.0 ]);
  checkf "one hog" (1.0 /. 3.0) (Stats.jain_fairness [ 9.0; 0.0; 0.0 ]);
  checkf "all zero" 1.0 (Stats.jain_fairness [ 0.0; 0.0 ])

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 11.0 (* clamped *) ];
  check "total" 5 (Stats.Histogram.count h);
  check "bucket 1" 2 (Stats.Histogram.bucket_count h 1);
  check "clamped into last" 2 (Stats.Histogram.bucket_count h 9)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:100 in
  for i = 1 to 100 do
    Stats.Histogram.add h (float_of_int i -. 0.5)
  done;
  let q = Stats.Histogram.quantile h 0.9 in
  Alcotest.(check bool) "p90 near 90" true (abs_float (q -. 90.0) < 2.0)

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  Alcotest.(check (option (float 1e-9))) "empty" None (Stats.Ewma.value e);
  Stats.Ewma.add e 10.0;
  Stats.Ewma.add e 20.0;
  Alcotest.(check (option (float 1e-9))) "smoothed" (Some 15.0)
    (Stats.Ewma.value e)

let test_series_rate () =
  let s = Stats.Series.create () in
  Stats.Series.add s ~time:0.0 ~value:0.0;
  Stats.Series.add s ~time:2.0 ~value:10.0;
  checkf "rate" 5.0 (Stats.Series.rate s);
  check "length" 2 (Stats.Series.length s)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_order () =
  let p = Pool.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  check "size" 4 (Pool.size p);
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Pool.map p xs ~f:(fun x -> x * x));
  Alcotest.(check (list int)) "empty" [] (Pool.map p [] ~f:(fun x -> x));
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map p [ 7 ] ~f:succ)

let test_pool_single_domain_inline () =
  (* a size-1 pool spawns no workers and runs f on the caller *)
  let p = Pool.create ~domains:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let caller = Domain.self () in
  let seen = Pool.map p [ 1; 2; 3 ] ~f:(fun _ -> Domain.self ()) in
  Alcotest.(check bool) "inline on caller" true
    (List.for_all (fun d -> d = caller) seen)

let test_pool_exception () =
  let p = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore (Pool.map p [ 1; 2; 3 ] ~f:(fun x ->
          if x = 2 then failwith "boom" else x)));
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "usable after failure" [ 2; 4 ]
    (Pool.map p [ 1; 2 ] ~f:(fun x -> x * 2))

let test_pool_reuse () =
  let p = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  for round = 1 to 5 do
    let xs = List.init (10 * round) Fun.id in
    check
      (Printf.sprintf "round %d" round)
      (List.fold_left ( + ) 0 (List.map succ xs))
      (List.fold_left ( + ) 0 (Pool.map p xs ~f:succ))
  done

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain fairness lies in [1/n, 1]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let j = Stats.jain_fairness xs in
      let n = float_of_int (List.length xs) in
      j >= (1.0 /. n) -. 1e-9 && j <= 1.0 +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let suites =
  [ ( "util.bits",
      [ Alcotest.test_case "roundtrip widths" `Quick test_bits_roundtrip;
        Alcotest.test_case "u64 roundtrip" `Quick test_bits_u64;
        Alcotest.test_case "big endian layout" `Quick test_bits_big_endian;
        Alcotest.test_case "internet checksum" `Quick test_bits_checksum;
        Alcotest.test_case "checksum odd length" `Quick
          test_bits_checksum_odd_length;
        Alcotest.test_case "hex dump" `Quick test_hex_dump ] );
    ( "util.heap",
      [ Alcotest.test_case "sorted drain" `Quick test_heap_order;
        Alcotest.test_case "FIFO on equal keys" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty behavior" `Quick test_heap_empty;
        Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
        Alcotest.test_case "releases popped payloads" `Quick
          test_heap_releases_popped;
        QCheck_alcotest.to_alcotest prop_heap_sorts ] );
    ( "util.wheel",
      [ Alcotest.test_case "sorted drain" `Quick test_wheel_order;
        Alcotest.test_case "FIFO on equal keys" `Quick test_wheel_fifo_ties;
        Alcotest.test_case "overflow migrates in order" `Quick
          test_wheel_overflow_migrates;
        Alcotest.test_case "pop_until states" `Quick test_wheel_pop_until;
        Alcotest.test_case "horizon boundary stays in overflow" `Quick
          test_wheel_horizon_boundary;
        Alcotest.test_case "FIFO across overflow migration" `Quick
          test_wheel_horizon_boundary_fifo;
        Alcotest.test_case "pop_until strict bound" `Quick
          test_wheel_pop_until_strict;
        QCheck_alcotest.to_alcotest prop_wheel_heap_equivalent ] );
    ( "util.bufpool",
      [ Alcotest.test_case "acquire/release reuse" `Quick test_bufpool_reuse;
        Alcotest.test_case "retain bound" `Quick test_bufpool_retain_bound;
        Alcotest.test_case "grow preserves prefix" `Quick
          test_bufpool_grow_preserves;
        Alcotest.test_case "with_buf releases" `Quick
          test_bufpool_with_buf_releases ] );
    ( "util.prng",
      [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "int bounds" `Quick test_prng_bounds;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "split independence" `Quick
          test_prng_split_independent;
        Alcotest.test_case "exponential positive" `Quick
          test_prng_exponential_positive;
        Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
        Alcotest.test_case "shuffle is a permutation" `Quick
          test_prng_shuffle_permutation ] );
    ( "util.stats",
      [ Alcotest.test_case "online mean/variance" `Quick test_online_mean_var;
        Alcotest.test_case "percentiles" `Quick test_percentile;
        Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
        Alcotest.test_case "percentile float order" `Quick
          test_percentile_float_order;
        Alcotest.test_case "jain fairness" `Quick test_jain;
        Alcotest.test_case "histogram buckets" `Quick test_histogram;
        Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
        Alcotest.test_case "ewma" `Quick test_ewma;
        Alcotest.test_case "series rate" `Quick test_series_rate;
        QCheck_alcotest.to_alcotest prop_jain_bounds;
        QCheck_alcotest.to_alcotest prop_percentile_monotone ] );
    ( "util.pool",
      [ Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
        Alcotest.test_case "size-1 runs inline" `Quick
          test_pool_single_domain_inline;
        Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        Alcotest.test_case "pool reuse across batches" `Quick
          test_pool_reuse ] ) ]
