(* zenctl — command-line front end to the toolkit.

   Subcommands:
     topo      describe a generated topology
     compile   compile a policy and print per-switch flow tables
     verify    check reachability / loops / isolation of a policy
     simulate  run traffic through the simulated network
     chaos     seeded chaos run against the resilient control plane
     ping      end-to-end ping between two hosts under a policy
     te        compare traffic-engineering schemes on a WAN

   Topology specs: linear:N ring:N star:N fattree:K grid:RxC abilene b4
   waxman:N:SEED (see Topo.Gen.of_spec). *)

open Cmdliner

let topo_arg =
  let doc =
    "Topology spec: linear:N, ring:N, star:N, fattree:K, grid:RxC, \
     abilene, b4, waxman:N:SEED."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPO" ~doc)

let load_topo spec =
  try Ok (Topo.Gen.of_spec spec) with
  | Invalid_argument m -> Error (`Msg m)

let policy_arg =
  let doc =
    "Policy in concrete syntax (e.g. 'filter tpDst = 80; port := 2'). \
     Default: shortest-path routing synthesized from the topology."
  in
  Arg.(value & opt (some string) None & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let load_policy topo = function
  | None -> Ok (Netkat.Builder.routing_policy topo)
  | Some s ->
    (try Ok (Netkat.Parser.pol_of_string s) with
     | Netkat.Parser.Parse_error m -> Error (`Msg ("policy: " ^ m)))

let or_die = function
  | Ok v -> v
  | Error (`Msg m) ->
    prerr_endline ("zenctl: " ^ m);
    exit 1

(* ------------------------------------------------------------------ *)
(* topo *)

let topo_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run spec dot =
    let topo = or_die (load_topo spec) in
    if dot then print_string (Topo.Topology.to_dot topo)
    else Format.printf "%a" Topo.Topology.pp topo
  in
  Cmd.v (Cmd.info "topo" ~doc:"Describe a generated topology")
    Term.(const run $ topo_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* compile *)

let compile_cmd =
  let switch_arg =
    Arg.(value & opt (some int) None
         & info [ "s"; "switch" ] ~docv:"ID" ~doc:"Only this switch.")
  in
  let naive_arg =
    Arg.(value & flag
         & info [ "naive" ] ~doc:"Use the naive baseline compiler instead of the FDD.")
  in
  let run spec pol_str switch naive =
    let topo = or_die (load_topo spec) in
    let pol = or_die (load_policy topo pol_str) in
    let switches =
      match switch with
      | Some s -> [ s ]
      | None -> Topo.Topology.switch_ids topo
    in
    let total = ref 0 in
    List.iter
      (fun sw ->
        let rules =
          if naive then Netkat.Naive.compile ~switch:sw pol
          else Netkat.Local.compile ~switch:sw pol
        in
        total := !total + List.length rules;
        Format.printf "switch %d (%d rules):@." sw (List.length rules);
        List.iter
          (fun r -> Format.printf "  %a@." Netkat.Local.pp_rule r)
          rules)
      switches;
    Format.printf "total: %d rules (%s compiler)@." !total
      (if naive then "naive" else "FDD")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a policy to per-switch flow tables")
    Term.(const run $ topo_arg $ policy_arg $ switch_arg $ naive_arg)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify_cmd =
  let run spec pol_str =
    let topo = or_die (load_topo spec) in
    let pol = or_die (load_policy topo pol_str) in
    let net = Zen.create topo in
    ignore (Zen.install_policy net pol);
    let snap = Zen.snapshot net in
    let matrix = Verify.Reach.reachability_matrix snap in
    let ok = List.length (List.filter snd matrix) in
    Format.printf "reachability: %d/%d host pairs connected@." ok
      (List.length matrix);
    List.iter
      (fun ((s, d), r) -> if not r then Format.printf "  h%d -/-> h%d@." s d)
      matrix;
    let loops = Verify.Reach.loop_free snap in
    Format.printf "loops: %s@."
      (if loops = [] then "none"
       else Printf.sprintf "%d looping slices" (List.length loops))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Symbolically verify a policy's tables")
    Term.(const run $ topo_arg $ policy_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

(* hand-rolled JSON: everything simulate emits is flat scalars, one
   stats object and one per-shard array, so a printer beats a dep *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f
let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields)
  ^ "}"
let json_arr items = "[" ^ String.concat ", " items ^ "]"

let json_of_counters (c : Dataplane.Network.counters) =
  json_obj
    [ ("delivered", string_of_int c.delivered);
      ("dropped_policy", string_of_int c.dropped_policy);
      ("dropped_miss", string_of_int c.dropped_miss);
      ("dropped_queue", string_of_int c.dropped_queue);
      ("dropped_link", string_of_int c.dropped_link);
      ("dropped_ttl", string_of_int c.dropped_ttl);
      ("dropped_down", string_of_int c.dropped_down);
      ("dropped_chaos", string_of_int c.dropped_chaos);
      ("corrupted", string_of_int c.corrupted);
      ("reordered", string_of_int c.reordered);
      ("forwarded", string_of_int c.forwarded);
      ("control_msgs", string_of_int c.control_msgs);
      ("control_bytes", string_of_int c.control_bytes);
      ("fenced_writes", string_of_int c.fenced_writes) ]

let simulate_cmd =
  let flows_arg =
    Arg.(value & opt int 10 & info [ "flows" ] ~docv:"N" ~doc:"Random CBR flows.")
  in
  let rate_arg =
    Arg.(value & opt float 100.0 & info [ "rate" ] ~docv:"PPS" ~doc:"Per-flow rate.")
  in
  let duration_arg =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SECS" ~doc:"Traffic duration.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let mode_arg =
    let e = Arg.enum [ ("compiled", `Compiled); ("learning", `Learning);
                       ("routing", `Routing) ] in
    Arg.(value & opt e `Compiled
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"compiled (tables pushed directly), learning (reactive \
                   controller) or routing (proactive controller).")
  in
  let shards_arg =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Partition the simulation over N domains (conservative \
                   parallel DES; compiled and routing modes).  Default: \
                   the ZEN_SIM_SHARDS environment knob, else 1.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the run's results as one JSON object on stdout \
                   instead of text.")
  in
  let partition_arg =
    Arg.(value & opt (some string) None
         & info [ "partition" ] ~docv:"SCHEME"
             ~doc:"Shard partition scheme: 'block' (contiguous switch-id \
                   blocks) or 'pod:K' (fat-tree pod affinity).  Default: \
                   block.")
  in
  let incremental_arg =
    Arg.(value & flag
         & info [ "incremental" ]
             ~doc:"Incremental delta recompilation: repeated installs \
                   (policy edits, topology events) uid-skip unchanged \
                   switches and push minimal add/delete flow-mods instead \
                   of full table re-pushes.  Applies to compiled and \
                   routing modes.  Default: the ZEN_INCREMENTAL \
                   environment knob.")
  in
  let run_sharded topo spec pol_str flows rate duration seed mode shards
      partition json =
    let partition =
      Option.map
        (fun s ->
          match Dataplane.Shard.partition_of_string s with
          | Some p -> p
          | None ->
            prerr_endline
              ("zenctl: unknown partition " ^ s ^ " (have: block, pod:K)");
            exit 1)
        partition
    in
    let t = Zen.create_sharded ~shards ?partition topo in
    let mode_name, n =
      match mode with
      | `Learning -> assert false (* rejected before dispatching here *)
      | `Compiled ->
        let pol = or_die (load_policy topo pol_str) in
        ("compiled", Zen.install_policy_sharded t pol)
      | `Routing ->
        let app = Controller.Routing.create () in
        ignore
          (Zen.with_controller_sharded t [ Controller.Routing.app app ]);
        ( "routing",
          List.fold_left
            (fun acc id ->
              acc
              + Flow.Table.size
                  (Dataplane.Network.switch
                     (Dataplane.Shard.net_of_switch t id) id)
                    .table)
            0
            (Topo.Topology.switch_ids topo) )
    in
    let window_mode = Util.Shard_sync.window_mode_of_env () in
    let steal = Util.Shard_sync.steal_enabled_of_env () in
    if not json then
      Format.printf
        "installed %d rules over %d shards (lookahead %.1f us, %s windows, \
         steal %s)@."
        n
        (Dataplane.Shard.shards t)
        (Dataplane.Shard.lookahead t *. 1e6)
        (Util.Shard_sync.window_mode_to_string window_mode)
        (if steal then "on" else "off");
    let prng = Util.Prng.create seed in
    let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
    let specs =
      Dataplane.Traffic.random_pair_specs ~prng ~host_ids ~flows
        ~rate_pps:rate ~pkt_size:1000 ~stop:duration ()
    in
    let senders =
      List.map
        (fun (s : Dataplane.Traffic.flow_spec) ->
          Dataplane.Traffic.cbr (Dataplane.Shard.net_of_host t s.src) s)
        specs
    in
    let t0 = Unix.gettimeofday () in
    let executed = Zen.run_sharded ~until:(duration +. 1.0) t in
    let wall = Unix.gettimeofday () -. t0 in
    let sent = List.fold_left (fun acc s -> acc + !s) 0 senders in
    if json then
      print_endline
        (json_obj
           [ ("mode", json_str mode_name);
             ("topo", json_str spec);
             ("shards", string_of_int (Dataplane.Shard.shards t));
             ("lookahead_us",
              json_float (Dataplane.Shard.lookahead t *. 1e6));
             ("window_mode",
              json_str (Util.Shard_sync.window_mode_to_string window_mode));
             ("steal", string_of_bool steal);
             ("installed_rules", string_of_int n);
             ("flows", string_of_int flows);
             ("sent", string_of_int sent);
             ("duration_s", json_float duration);
             ("wall_s", json_float wall);
             ("events", string_of_int executed);
             ("rounds", string_of_int (Dataplane.Shard.rounds t));
             ("handoffs", string_of_int (Dataplane.Shard.handoffs t));
             ("stalls", string_of_int (Dataplane.Shard.stalls t));
             ("steals", string_of_int (Dataplane.Shard.steals t));
             ("backpressure",
              string_of_int (Dataplane.Shard.backpressure t));
             ("high_water", string_of_int (Dataplane.Shard.high_water t));
             ("stats", json_of_counters (Dataplane.Shard.stats t));
             ("per_shard",
              json_arr
                (List.init (Dataplane.Shard.shards t) (fun i ->
                   json_obj
                     [ ("shard", string_of_int i);
                       ("events",
                        string_of_int (Dataplane.Shard.executed_of t i));
                       ("handoffs_in",
                        string_of_int (Dataplane.Shard.handoffs_of t i));
                       ("stalls",
                        string_of_int (Dataplane.Shard.stalls_of t i));
                       ("steals",
                        string_of_int (Dataplane.Shard.steals_of t i));
                       ("windows",
                        string_of_int (Dataplane.Shard.windows_of t i));
                       ("avg_window_us",
                        json_float (Dataplane.Shard.avg_window_of t i *. 1e6))
                     ]))) ])
    else begin
      Format.printf "sent %d packets over %d flows in %.1fs of simulated time@."
        sent flows duration;
      Format.printf "%a@." Dataplane.Network.pp_stats (Dataplane.Shard.stats t);
      Format.printf
        "events executed: %d (%.0f events/s wall) in %d rounds, %d \
         cross-shard handoffs, %d steals, %d backpressure waits (mailbox \
         high-water %d)@."
        executed
        (if wall > 0.0 then float_of_int executed /. wall else 0.0)
        (Dataplane.Shard.rounds t)
        (Dataplane.Shard.handoffs t)
        (Dataplane.Shard.steals t)
        (Dataplane.Shard.backpressure t)
        (Dataplane.Shard.high_water t);
      for i = 0 to Dataplane.Shard.shards t - 1 do
        let ev = Dataplane.Shard.executed_of t i in
        Format.printf
          "  shard %d: %d events (%.0f events/s wall), %d handoffs in, %d \
           horizon stalls, %d steals, %d windows (avg %.1f us)@."
          i ev
          (if wall > 0.0 then float_of_int ev /. wall else 0.0)
          (Dataplane.Shard.handoffs_of t i)
          (Dataplane.Shard.stalls_of t i)
          (Dataplane.Shard.steals_of t i)
          (Dataplane.Shard.windows_of t i)
          (Dataplane.Shard.avg_window_of t i *. 1e6)
      done
    end
  in
  let run spec pol_str flows rate duration seed mode shards partition
      incremental json =
    let incremental = incremental || Netkat.Delta.env_enabled () in
    let topo = or_die (load_topo spec) in
    let sharded =
      match shards with
      | Some n -> n > 1 || partition <> None
      | None -> Dataplane.Shard.default_shards () > 1 || partition <> None
    in
    if sharded then begin
      (match mode with
       | `Compiled | `Routing -> ()
       | `Learning ->
         prerr_endline
           "zenctl: --shards supports --mode compiled or routing (the \
            learning app pokes switch state directly and cannot run \
            sharded)";
         exit 1);
      let shards =
        match shards with
        | Some n -> n
        | None -> Dataplane.Shard.default_shards ()
      in
      run_sharded topo spec pol_str flows rate duration seed mode shards
        partition json
    end
    else
    let net = Zen.create topo in
    let mode_name, installed =
      match mode with
      | `Compiled ->
        let pol = or_die (load_policy topo pol_str) in
        let n = Zen.install_policy ~incremental net pol in
        if not json then Format.printf "installed %d rules@." n;
        ("compiled", n)
      | `Learning ->
        let app = Controller.Learning.create () in
        ignore (Zen.with_controller net [ Controller.Learning.app app ]);
        ("learning", 0)
      | `Routing ->
        let app = Controller.Routing.create ~incremental () in
        ignore (Zen.with_controller net [ Controller.Routing.app app ]);
        ( "routing",
          List.fold_left
            (fun acc (sw : Dataplane.Network.switch) ->
              acc + Flow.Table.size sw.table)
            0
            (Dataplane.Network.switch_list net.network) )
    in
    let prng = Util.Prng.create seed in
    let t0 = Unix.gettimeofday () in
    let senders =
      Dataplane.Traffic.random_pairs net.network ~prng ~flows ~rate_pps:rate
        ~pkt_size:1000 ~stop:duration
    in
    ignore (Zen.run ~until:(duration +. 1.0) net);
    let wall = Unix.gettimeofday () -. t0 in
    let sent = List.fold_left (fun acc s -> acc + !s) 0 senders in
    let ch, cm, inv, cp, cs =
      List.fold_left
        (fun (h, m, i, p, s) (sw : Dataplane.Network.switch) ->
          (h + Flow.Table.cache_hits sw.table,
           m + Flow.Table.cache_misses sw.table,
           i + Flow.Table.invalidations sw.table,
           p + Flow.Table.classifier_probes sw.table,
           s + Flow.Table.shape_count sw.table))
        (0, 0, 0, 0, 0)
        (Dataplane.Network.switch_list net.network)
    in
    let executed = Dataplane.Sim.executed (Dataplane.Network.sim net.network) in
    if json then
      print_endline
        (json_obj
           [ ("mode", json_str mode_name);
             ("topo", json_str spec);
             ("shards", "1");
             ("installed_rules", string_of_int installed);
             ("flows", string_of_int flows);
             ("sent", string_of_int sent);
             ("duration_s", json_float duration);
             ("wall_s", json_float wall);
             ("events", string_of_int executed);
             ("stats",
              json_of_counters (Dataplane.Network.stats net.network));
             ("flow_cache",
              json_obj
                [ ("hits", string_of_int ch);
                  ("misses", string_of_int cm);
                  ("invalidations", string_of_int inv);
                  ("classifier_probes", string_of_int cp);
                  ("shapes", string_of_int cs) ]) ])
    else begin
      Format.printf "sent %d packets over %d flows in %.1fs of simulated time@."
        sent flows duration;
      Format.printf "%a@." Dataplane.Network.pp_stats
        (Dataplane.Network.stats net.network);
      let probes = ch + cm in
      Format.printf
        "flow cache: %d hits, %d misses (%.1f%% hit rate), %d invalidations@."
        ch cm
        (if probes = 0 then 0.0
         else 100.0 *. float_of_int ch /. float_of_int probes)
        inv;
      Format.printf
        "classifier: %d shape probes over %d shapes (%.1f probes/miss)@."
        cp cs
        (if cm = 0 then 0.0 else float_of_int cp /. float_of_int cm);
      (match Dataplane.Network.fault net.network with
       | Some f -> Format.printf "%a@." Dataplane.Fault.pp_stats f
       | None -> ());
      Format.printf "events executed: %d@." executed
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run random traffic through the network")
    Term.(const run $ topo_arg $ policy_arg $ flows_arg $ rate_arg
          $ duration_arg $ seed_arg $ mode_arg $ shards_arg $ partition_arg
          $ incremental_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* chaos *)

let chaos_cmd =
  let seed_arg =
    Arg.(value & opt int Dataplane.Fault.default_seed
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Chaos seed; the same seed reproduces the same run.")
  in
  let drop_arg =
    Arg.(value & opt float 0.2 & info [ "drop" ] ~docv:"P"
             ~doc:"Per-transmission control-channel drop probability.")
  in
  let dup_arg =
    Arg.(value & opt float 0.05 & info [ "dup" ] ~docv:"P"
             ~doc:"Per-transmission duplicate probability.")
  in
  let jitter_arg =
    Arg.(value & opt float 1e-3 & info [ "jitter" ] ~docv:"SECS"
             ~doc:"Max extra one-way control latency (uniform).")
  in
  let link_drop_arg =
    Arg.(value & opt float 0.0 & info [ "link-drop" ] ~docv:"P"
             ~doc:"Per-transmission data-packet drop probability, per link.")
  in
  let corrupt_arg =
    Arg.(value & opt float 0.0 & info [ "corrupt" ] ~docv:"P"
             ~doc:"Per-transmission data-packet corruption probability, per \
                   link; corrupted frames are counted and discarded.")
  in
  let reorder_arg =
    Arg.(value & opt float 0.0 & info [ "reorder" ] ~docv:"P"
             ~doc:"Per-transmission data-packet reorder probability, per \
                   link (extra uniform delay past in-flight packets).")
  in
  let flaps_arg =
    Arg.(value & opt int 2 & info [ "flaps" ] ~docv:"N"
             ~doc:"Random inter-switch links to flap during the run.")
  in
  let crash_arg =
    Arg.(value & opt (some int) None & info [ "crash" ] ~docv:"SWITCH"
             ~doc:"Crash this switch mid-run (it restarts and resyncs).")
  in
  let flows_arg =
    Arg.(value & opt int 6 & info [ "flows" ] ~docv:"N" ~doc:"Random CBR flows.")
  in
  let rate_arg =
    Arg.(value & opt float 200.0 & info [ "rate" ] ~docv:"PPS" ~doc:"Per-flow rate.")
  in
  let duration_arg =
    Arg.(value & opt float 2.0
         & info [ "duration" ] ~docv:"SECS" ~doc:"Traffic duration.")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the chaos event trace.")
  in
  let replicas_arg =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Run N controller replicas under a leader lease \
                   (default 1: plain single controller).")
  in
  let lease_arg =
    Arg.(value & opt float 150.0
         & info [ "lease" ] ~docv:"MS"
             ~doc:"Leader lease in milliseconds (replicas > 1).")
  in
  let ctl_crash_arg =
    Arg.(value & opt (some int) None
         & info [ "ctl-crash" ] ~docv:"ID"
             ~doc:"Crash controller ID mid-run (replicas > 1: a standby \
                   detects the expired lease and takes over).")
  in
  let split_brain_arg =
    Arg.(value & flag
         & info [ "split-brain" ]
             ~doc:"Partition the leader off the inter-controller channel \
                   mid-run (it keeps writing; fencing must reject it), \
                   healing near the end.")
  in
  let run spec seed drop dup jitter link_drop link_corrupt link_reorder flaps
      crash flows rate duration trace replicas lease_ms ctl_crash split_brain =
    let topo = or_die (load_topo spec) in
    let fault =
      Dataplane.Fault.create ~seed ~drop ~dup ~jitter ~link_drop ~link_corrupt
        ~link_reorder ()
    in
    let net = Zen.create ~fault topo in
    let mk_apps () = [ Controller.Routing.app (Controller.Routing.create ()) ] in
    let replica =
      if replicas > 1 then
        Some
          (Zen.with_replicas
             ~resilience:Controller.Runtime.default_resilience ~replicas
             ~lease:(lease_ms /. 1000.0) net mk_apps)
      else None
    in
    let rt_of_replica () =
      match replica with
      | None -> None
      | Some r -> Controller.Replica.leader_runtime r
    in
    let rt =
      match replica with
      | Some _ -> None
      | None ->
        Some
          (Zen.with_controller
             ~resilience:Controller.Runtime.default_resilience net
             (mk_apps ()))
    in
    (* the whole scenario — flap targets, times, traffic — derives from
       the one chaos seed, so a run is reproducible end to end *)
    let scenario = Dataplane.Fault.derive_prng fault in
    let sw_links =
      Topo.Topology.links topo
      |> List.filter (fun (l : Topo.Topology.link) ->
        Topo.Topology.Node.is_switch l.src && Topo.Topology.Node.is_switch l.dst)
      |> Array.of_list
    in
    let incidents =
      List.init (min flaps (Array.length sw_links)) (fun _ ->
        let l = Util.Prng.pick scenario sw_links in
        Dataplane.Fault.Link_flap
          { node = l.src; port = l.src_port;
            at = 0.2 *. duration +. Util.Prng.float scenario (0.4 *. duration);
            duration = 0.2 *. duration })
      @
      (match crash with
       | None -> []
       | Some switch_id ->
         [ Dataplane.Fault.Switch_outage
             { switch_id; at = 0.3 *. duration; duration = 0.3 *. duration } ])
      @ (match ctl_crash with
         | None -> []
         | Some controller_id ->
           [ Dataplane.Fault.Controller_outage
               { controller_id; at = 0.3 *. duration;
                 duration = 0.4 *. duration } ])
      @ Dataplane.Fault.ctl_incidents_from_env ()
    in
    Dataplane.Network.inject net.network incidents;
    (match (replica, split_brain) with
     | Some r, true ->
       (* cut the current leader off the replication channel mid-run;
          heal near the end so the deposed leader steps down on record *)
       let sim = Dataplane.Network.sim net.network in
       Dataplane.Sim.schedule_at sim ~time:(0.3 *. duration) (fun () ->
         match Controller.Replica.leader r with
         | Some id -> Controller.Replica.partition r ~controller_id:id
         | None -> ());
       Dataplane.Sim.schedule_at sim ~time:(0.8 *. duration) (fun () ->
         List.iter
           (fun id ->
             Controller.Replica.heal r ~controller_id:id)
           (List.init replicas Fun.id))
     | _ -> ());
    let senders =
      Dataplane.Traffic.random_pairs net.network ~prng:scenario ~flows
        ~rate_pps:rate ~pkt_size:500 ~stop:duration
    in
    ignore (Zen.run ~until:(duration +. 2.0) net);
    let sent = List.fold_left (fun acc s -> acc + !s) 0 senders in
    let delivered = (Dataplane.Network.stats net.network).delivered in
    Format.printf "sent %d, delivered %d (%.1f%% delivery) over %d flows@."
      sent delivered
      (if sent = 0 then 0.0
       else 100.0 *. float_of_int delivered /. float_of_int sent)
      flows;
    Format.printf "%a@." Dataplane.Fault.pp_stats fault;
    let live_rt =
      match rt with Some _ -> rt | None -> rt_of_replica ()
    in
    (match live_rt with
     | None -> Format.printf "control plane: no live controller@."
     | Some rt ->
       let rs = Controller.Runtime.resilience_stats rt in
       Format.printf
         "control plane: %d retransmits, %d echo misses, %d switch-down \
          events, %d resyncs, %d batches acked, %d dropped@."
         rs.retransmits rs.echo_misses rs.switch_downs rs.resyncs
         rs.acked_batches rs.dropped_batches;
       match Controller.Runtime.recovery_times rt with
       | [] -> Format.printf "recoveries: none@."
       | ts ->
         Format.printf
           "recoveries: %d, time p50=%.3fs p95=%.3fs p99=%.3fs@."
           (List.length ts)
           (Util.Stats.percentile ts 50.0)
           (Util.Stats.percentile ts 95.0)
           (Util.Stats.percentile ts 99.0));
    (match replica with
     | None -> ()
     | Some r ->
       let s = Controller.Replica.stats r in
       Format.printf
         "replication: leader=%s epoch=%d, %d failovers (%d completed), %d \
          step-downs, %d heartbeats, %d deltas, %d syncs, %d repl msgs (%d \
          dropped), %d fenced writes@."
         (match Controller.Replica.leader r with
          | Some id -> Printf.sprintf "c%d" id
          | None -> "none")
         (Controller.Replica.epoch r)
         s.failovers s.takeovers_completed s.step_downs s.hb_sent
         s.deltas_sent s.syncs s.repl_msgs s.repl_drops
         (Dataplane.Network.stats net.network).fenced_writes;
       match Controller.Replica.failover_samples r with
       | [] -> Format.printf "failovers: none@."
       | ts ->
         Format.printf "failovers: %d, time p50=%.3fs p95=%.3fs p99=%.3fs@."
           (List.length ts)
           (Util.Stats.percentile ts 50.0)
           (Util.Stats.percentile ts 95.0)
           (Util.Stats.percentile ts 99.0));
    let diverged =
      match replica with
      | Some r -> Controller.Replica.diverged r
      | None ->
        (match live_rt with
         | None -> []
         | Some rt ->
           List.filter
             (fun (sw : Dataplane.Network.switch) ->
               let key (r : Flow.Table.rule) =
                 (r.priority, r.pattern, r.actions, r.cookie)
               in
               let keys rules = List.sort compare (List.map key rules) in
               keys (Flow.Table.rules sw.table)
               <> keys
                    (Controller.Runtime.intended_rules rt ~switch_id:sw.sw_id))
             (Dataplane.Network.switch_list net.network)
           |> List.map (fun (sw : Dataplane.Network.switch) -> sw.sw_id))
    in
    (match diverged with
     | [] -> Format.printf "convergence: all tables equal intended state@."
     | sws ->
       Format.printf "convergence: DIVERGED on switches %s@."
         (String.concat ", " (List.map string_of_int sws)));
    if trace then
      List.iter print_endline (Dataplane.Fault.events fault);
    if diverged <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run seeded chaos (control loss/dup/jitter, per-link data \
             drop/corrupt/reorder, flaps, crashes) against the resilient \
             control plane")
    Term.(const run $ topo_arg $ seed_arg $ drop_arg $ dup_arg $ jitter_arg
          $ link_drop_arg $ corrupt_arg $ reorder_arg
          $ flaps_arg $ crash_arg $ flows_arg $ rate_arg $ duration_arg
          $ trace_arg $ replicas_arg $ lease_arg $ ctl_crash_arg
          $ split_brain_arg)

(* ------------------------------------------------------------------ *)
(* ping *)

let ping_cmd =
  let src_arg =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"HOST" ~doc:"Source host id.")
  in
  let dst_arg =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"HOST" ~doc:"Destination host id.")
  in
  let run spec pol_str src dst =
    let topo = or_die (load_topo spec) in
    let pol = or_die (load_policy topo pol_str) in
    let net = Zen.create topo in
    ignore (Zen.install_policy net pol);
    Format.printf "verified reachable: %b@." (Zen.reachable net ~src ~dst);
    match Zen.ping net ~src ~dst with
    | [] -> Format.printf "no replies@."; exit 2
    | rtts ->
      List.iteri
        (fun i r -> Format.printf "seq=%d rtt=%.1f us@." i (r *. 1e6))
        rtts
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"End-to-end ping through the simulated dataplane")
    Term.(const run $ topo_arg $ policy_arg $ src_arg $ dst_arg)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let pol_pos n doc = Arg.(required & pos n (some string) None & info [] ~docv:"POLICY" ~doc) in
  let run a b =
    let parse s =
      try Netkat.Parser.pol_of_string s with
      | Netkat.Parser.Parse_error m ->
        prerr_endline ("zenctl: " ^ m);
        exit 1
    in
    let pa = parse a and pb = parse b in
    match Netkat.Analysis.counterexample pa pb with
    | None -> Format.printf "equivalent@."
    | Some h ->
      Format.printf "NOT equivalent; counterexample packet:@.  %a@."
        Packet.Headers.pp h;
      Format.printf "  first  policy output: %d packet(s)@."
        (Netkat.Semantics.HSet.cardinal (Netkat.Semantics.eval pa h));
      Format.printf "  second policy output: %d packet(s)@."
        (Netkat.Semantics.HSet.cardinal (Netkat.Semantics.eval pb h));
      exit 3
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Decide equivalence of two policies")
    Term.(const run
          $ pol_pos 0 "First policy." $ pol_pos 1 "Second policy.")

(* ------------------------------------------------------------------ *)
(* te *)

let te_cmd =
  let load_arg =
    Arg.(value & opt float 2.0
         & info [ "load" ] ~docv:"X" ~doc:"Demand scale (1.0 ~ capacity).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Demand seed.")
  in
  let run spec load seed =
    let topo = or_die (load_topo spec) in
    let prng = Util.Prng.create seed in
    let demands =
      Te.Demand.gravity ~prng ~switches:(Topo.Topology.switch_ids topo)
        ~total_rate:(load *. 100e9) ~priorities:3 ()
    in
    Format.printf "offered: %.1f Gb/s over %d demands@."
      (Te.Demand.total demands /. 1e9)
      (List.length demands);
    List.iter
      (fun (name, a) -> Format.printf "%-8s %s@." name (Te.Alloc.summary a))
      [ ("ecmp", Te.Ecmp.solve topo demands);
        ("maxmin", Te.Maxmin.solve topo demands);
        ("greedy", Te.Greedy_kpath.solve topo demands) ]
  in
  Cmd.v
    (Cmd.info "te" ~doc:"Compare traffic-engineering schemes")
    Term.(const run $ topo_arg $ load_arg $ seed_arg)

let () =
  let info =
    Cmd.info "zenctl" ~version:Zen.version
      ~doc:"Software-defined network architecture toolkit"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ topo_cmd; compile_cmd; verify_cmd; simulate_cmd; chaos_cmd;
            ping_cmd; analyze_cmd; te_cmd ]))
