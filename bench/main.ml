(* The experiment harness: regenerates every table of the evaluation
   suite defined in DESIGN.md (E1..E8), plus Bechamel microbenchmarks of
   the hot kernels.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e1 e6   # selected experiments
     dune exec bench/main.exe -- micro   # microbenchmarks only

   Expected shapes (paper-style claims being reproduced) are printed
   with each table; EXPERIMENTS.md records a reference run. *)

let pf = Format.printf

let header title =
  pf "@.%s@.%s@." title (String.make (String.length title) '=')

(* Machine-readable results: [record] accumulates (experiment, metric,
   value) rows; [--json FILE] writes them out so the repo can keep
   BENCH_*.json perf-trajectory files across PRs. *)
let recorded : (string * string * float) list ref = ref []

let record ~experiment ~metric value =
  recorded := (experiment, metric, value) :: !recorded

let write_json file =
  let oc = open_out file in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (experiment, metric, value) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"experiment\": %S, \"metric\": %S, \"value\": %.6g}" experiment
           metric value))
    (List.rev !recorded);
  Buffer.add_string buf "\n]\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "wrote %d metrics to %s@." (List.length !recorded) file

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms t = t *. 1e3

(* ------------------------------------------------------------------ *)
(* E1 — policy compilation: FDD vs naive baseline *)

let allowlist_policy topo k =
  (* allowlist ACL (naive-compatible: no negation) over source IPs,
     composed with IP routing *)
  let acl =
    Netkat.Syntax.big_union
      (List.init k (fun i ->
         Netkat.Syntax.filter
           (Netkat.Syntax.test Packet.Fields.Ip4_src
              (Packet.Ipv4.of_host_id (i + 1)))))
  in
  Netkat.Syntax.seq acl (Netkat.Builder.ip_routing_policy topo)

let denylist_policy topo k =
  let entries =
    List.init k (fun i ->
      { Netkat.Builder.allow = false;
        src_ip = Some (Packet.Ipv4.of_host_id (i + 1));
        dst_ip = None; proto = None; dst_port = Some 22 })
  in
  Netkat.Builder.firewall ~default_allow:true topo entries

let e1 () =
  header "E1 — policy compilation: FDD compiler vs naive baseline";
  pf "expected shape: naive ties on plain routing, blows up on ACL x routing,@.";
  pf "and cannot compile denylists at all; the FDD stays linear and shadow-free.@.@.";
  pf "%-12s %-16s | %8s %8s %8s | %10s %10s %9s@." "topology" "policy"
    "fdd-rul" "fdd-nod" "fdd-ms" "naive-rul" "naive-shad" "naive-ms";
  pf "%s@." (String.make 94 '-');
  let row topo_name topo pol_name pol =
    let switches = Topo.Topology.switch_ids topo in
    Netkat.Fdd.clear_cache ();
    let (fdd_rules, fdd_nodes), fdd_t =
      wall (fun () ->
        let d = Netkat.Fdd.of_policy pol in
        let rules =
          List.fold_left
            (fun acc sw ->
              acc + List.length (Netkat.Local.rules_of_fdd ~switch:sw d))
            0 switches
        in
        (rules, Netkat.Fdd.node_count d))
    in
    let naive_cell =
      match
        wall (fun () ->
          List.map (fun sw -> Netkat.Naive.compile ~switch:sw pol) switches)
      with
      | per_switch, t ->
        let rules = List.fold_left (fun a l -> a + List.length l) 0 per_switch in
        (* count dead (shadowed) rules the baseline installs *)
        let shadowed =
          List.fold_left
            (fun acc rules ->
              let tbl = Flow.Table.create () in
              List.iter
                (fun (r : Netkat.Local.rule) ->
                  Flow.Table.add tbl
                    (Flow.Table.make_rule ~priority:r.priority
                       ~pattern:r.pattern ~actions:r.actions ()))
                rules;
              acc + List.length (Flow.Table.shadowed tbl))
            0 per_switch
        in
        Printf.sprintf "%10d %10d %8.1f" rules shadowed (ms t)
      | exception Netkat.Naive.Unsupported _ ->
        Printf.sprintf "%10s %10s %8s" "--" "--" "--"
    in
    record ~experiment:"e1"
      ~metric:(Printf.sprintf "%s/%s/fdd-ms" topo_name pol_name)
      (ms fdd_t);
    pf "%-12s %-16s | %8d %8d %8.1f | %s@." topo_name pol_name fdd_rules
      fdd_nodes (ms fdd_t) naive_cell
  in
  let topos =
    [ ("linear:4", Topo.Gen.linear ~switches:4 ~hosts_per_switch:2 ());
      ("linear:8", Topo.Gen.linear ~switches:8 ~hosts_per_switch:2 ());
      ("fattree:4", fst (Topo.Gen.fat_tree ~k:4 ())) ]
  in
  List.iter
    (fun (name, topo) ->
      row name topo "routing" (Netkat.Builder.routing_policy topo);
      row name topo "acl8-allowlist" (allowlist_policy topo 8);
      row name topo "fw8-denylist" (denylist_policy topo 8))
    topos;
  (* multicore per-switch compilation: the FDD is built once, then
     restrict + path extraction fan out over a domain pool.  Output is
     asserted identical across pool sizes. *)
  let n_rec = Domain.recommended_domain_count () in
  pf "@.parallel compile_all on fattree:4 (%d recommended domains on this host):@.@."
    n_rec;
  let domain_counts = List.sort_uniq compare [ 1; 2; 4; n_rec ] in
  pf "%-16s |" "policy";
  List.iter (fun n -> pf " %9s" (Printf.sprintf "%dd-ms" n)) domain_counts;
  pf " | %8s@." "rules";
  pf "%s@." (String.make (29 + (10 * List.length domain_counts)) '-');
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let switches = Topo.Topology.switch_ids topo in
  List.iter
    (fun (pol_name, pol) ->
      let baseline = ref None in
      pf "%-16s |" pol_name;
      List.iter
        (fun domains ->
          let pool = Util.Pool.create ~domains () in
          (* best of 3: domain scheduling on oversubscribed hosts is noisy *)
          let compiled = ref [] and t = ref infinity in
          for _ = 1 to 3 do
            Netkat.Fdd.clear_cache ();
            let c, ti =
              wall (fun () -> Netkat.Local.compile_all ~pool ~switches pol)
            in
            compiled := c;
            if ti < !t then t := ti
          done;
          let compiled = !compiled and t = !t in
          Util.Pool.shutdown pool;
          (match !baseline with
           | None ->
             baseline :=
               Some
                 ( compiled,
                   List.fold_left
                     (fun a (_, rs) -> a + List.length rs)
                     0 compiled )
           | Some (reference, _) ->
             if compiled <> reference then begin
               pf
                 "@.E1 FAILURE: compile_all at %d domains diverges from 1 \
                  domain@."
                 domains;
               exit 1
             end);
          record ~experiment:"e1"
            ~metric:
              (Printf.sprintf "fattree:4/%s/compile-all-ms/domains-%d"
                 pol_name domains)
            (ms t);
          pf " %9.1f" (ms t))
        domain_counts;
      pf " | %8d@."
        (match !baseline with Some (_, r) -> r | None -> 0))
    [ ("routing", Netkat.Builder.routing_policy topo);
      ("acl8-allowlist", allowlist_policy topo 8);
      ("fw8-denylist", denylist_policy topo 8) ]

(* ------------------------------------------------------------------ *)
(* E2 — flow-table lookup cost vs table size *)

let e2_sizes ?(smoke = false) sizes () =
  header "E2 — flow-table lookup cost vs table size";
  pf "expected shape: linear search cost grows with table size (hits near@.";
  pf "the top are cheap, misses scan the whole table); the tuple-space@.";
  pf "classifier makes cold lookups O(shapes), and the exact-match flow@.";
  pf "cache makes repeated headers O(1), regardless of table size.@.@.";
  let prng = Util.Prng.create 5 in
  (* tuple-miss at the largest size, vs the linear scan: the smoke mode
     asserts the staged classifier keeps its advantage *)
  let final_linear_miss = ref nan and final_tuple_miss = ref nan in
  let time_lookups n table lookup mk =
    let iters = 200_000 / (1 + (n / 100)) in
    let hs = Array.init 64 (fun _ -> mk ()) in
    let (), t =
      wall (fun () ->
        for i = 0 to iters - 1 do
          ignore (lookup table hs.(i land 63))
        done)
    in
    t /. float_of_int iters *. 1e9
  in
  pf "%-10s | %12s %12s %12s | %11s %11s | %11s %11s@." "rules" "hit-hi(ns)"
    "hit-lo(ns)" "miss(ns)" "tuple-lo" "tuple-miss" "cached-lo" "cached-miss";
  pf "%s@." (String.make 104 '-');
  List.iter
    (fun n ->
      let table = Flow.Table.create () in
      for i = 1 to n do
        Flow.Table.add table
          (Flow.Table.make_rule ~priority:(n - i)
             ~pattern:
               { Flow.Pattern.any with
                 eth_dst = Some (Packet.Mac.of_host_id i) }
             ~actions:(Flow.Action.forward 1) ())
      done;
      let probe dst =
        Packet.Headers.tcp ~switch:1 ~in_port:1 ~src_host:1 ~dst_host:dst
          ~tp_src:(Util.Prng.int prng 1000) ~tp_dst:80
      in
      let linear = time_lookups n table Flow.Table.lookup_linear in
      let tuple = time_lookups n table Flow.Table.lookup_tuple in
      let cached = time_lookups n table Flow.Table.lookup in
      let hi () = probe (1 + Util.Prng.int prng (max 1 (n / 10))) in
      let lo () = probe (max 1 (n - Util.Prng.int prng (max 1 (n / 10)))) in
      let nohit () = probe (n + 1 + Util.Prng.int prng 1000) in
      let hit_hi = linear hi in
      let hit_lo = linear lo in
      let miss = linear nohit in
      (* the cold path through the classifier: one probe per shape *)
      let t_lo = tuple lo in
      let t_miss = tuple nohit in
      (* same worst-case workloads through the cache: after the first 64
         probes every lookup is an exact-match hit *)
      let c_lo = cached lo in
      let c_miss = cached nohit in
      let m = Printf.sprintf "%d-rules" n in
      record ~experiment:"e2" ~metric:(m ^ "/linear-hit-lo-ns") hit_lo;
      record ~experiment:"e2" ~metric:(m ^ "/linear-miss-ns") miss;
      record ~experiment:"e2" ~metric:(m ^ "/tuple-hit-lo-ns") t_lo;
      record ~experiment:"e2" ~metric:(m ^ "/tuple-miss-ns") t_miss;
      record ~experiment:"e2" ~metric:(m ^ "/cached-hit-lo-ns") c_lo;
      record ~experiment:"e2" ~metric:(m ^ "/cached-miss-ns") c_miss;
      final_linear_miss := miss;
      final_tuple_miss := t_miss;
      pf "%-10d | %12.0f %12.0f %12.0f | %11.0f %11.0f | %11.0f %11.0f@." n
        hit_hi hit_lo miss t_lo t_miss c_lo c_miss)
    sizes;
  (* worst case for tuple-space search: many shapes.  Prefix rules over
     five CIDR lengths; a cold miss probes every shape's hashtable. *)
  pf "@.mixed-shape table (ip4_dst prefixes over 5 CIDR lengths):@.@.";
  pf "%-10s | %8s | %12s %12s@." "rules" "shapes" "miss(ns)" "tuple-miss";
  pf "%s@." (String.make 50 '-');
  let lens = [| 16; 20; 24; 28; 32 |] in
  List.iter
    (fun n ->
      let table = Flow.Table.create () in
      for i = 1 to n do
        let len = lens.(i mod Array.length lens) in
        Flow.Table.add table
          (Flow.Table.make_rule ~priority:(n - i)
             ~pattern:
               { Flow.Pattern.any with
                 ip4_dst =
                   Some
                     (Packet.Ipv4.Prefix.make (Packet.Ipv4.of_host_id i) len) }
             ~actions:(Flow.Action.forward 1) ())
      done;
      (* true miss: destinations outside every 10/8 prefix *)
      let nohit () =
        Packet.Headers.set
          (Packet.Headers.tcp ~switch:1 ~in_port:1 ~src_host:1 ~dst_host:1
             ~tp_src:0 ~tp_dst:80)
          Packet.Fields.Ip4_dst
          (Packet.Ipv4.of_octets 11 (Util.Prng.int prng 256)
             (Util.Prng.int prng 256) 0)
      in
      let miss = time_lookups n table Flow.Table.lookup_linear nohit in
      let t_miss = time_lookups n table Flow.Table.lookup_tuple nohit in
      let m = Printf.sprintf "%d-rules" n in
      record ~experiment:"e2" ~metric:(m ^ "/mixed-linear-miss-ns") miss;
      record ~experiment:"e2" ~metric:(m ^ "/mixed-tuple-miss-ns") t_miss;
      pf "%-10d | %8d | %12.0f %12.0f@." n (Flow.Table.shape_count table) miss
        t_miss)
    sizes;
  if smoke then
    if !final_tuple_miss *. 2.0 >= !final_linear_miss then begin
      pf
        "SMOKE FAILURE: tuple-space miss %.0f ns is not at least 2x faster \
         than the linear scan's %.0f ns@."
        !final_tuple_miss !final_linear_miss;
      exit 1
    end
    else
      pf "@.smoke ok: tuple-space miss %.0f ns vs linear %.0f ns@."
        !final_tuple_miss !final_linear_miss

(* cache-overflow policy: once the working set exceeds the exact-match
   cache, CLOCK second-chance eviction should keep the hot headers
   resident while a wholesale reset forgets them on every overflow *)
let e2_overflow () =
  pf "@.cache overflow policy (hot set + cold stream > cache capacity):@.@.";
  pf "%-8s | %9s | %10s %10s@." "policy" "hit-pct" "evictions" "resets";
  pf "%s@." (String.make 46 '-');
  let run policy name =
    let table = Flow.Table.create ~cache_policy:policy ~cache_entries:1024 () in
    Flow.Table.add table
      (Flow.Table.make_rule ~priority:1 ~pattern:Flow.Pattern.any
         ~actions:(Flow.Action.forward 1) ());
    let probe dst tp_src =
      Packet.Headers.tcp ~switch:1 ~in_port:1 ~src_host:1 ~dst_host:dst
        ~tp_src ~tp_dst:80
    in
    (* 512 hot headers take 3/4 of lookups; the cold quarter streams
       through 8192 distinct headers, repeatedly overflowing the cache *)
    let hot = Array.init 512 (fun i -> probe (1 + (i / 64)) (i mod 64)) in
    let prng = Util.Prng.create 77 in
    for _ = 1 to 200_000 do
      let h =
        if Util.Prng.int prng 4 < 3 then hot.(Util.Prng.int prng 512)
        else probe (100 + Util.Prng.int prng 128) (1000 + Util.Prng.int prng 64)
      in
      ignore (Flow.Table.lookup table h)
    done;
    let hits = Flow.Table.cache_hits table
    and misses = Flow.Table.cache_misses table in
    let hit_pct = 100.0 *. float_of_int hits /. float_of_int (hits + misses) in
    record ~experiment:"e2" ~metric:("overflow-" ^ name ^ "/cache-hit-pct")
      hit_pct;
    pf "%-8s | %8.1f%% | %10d %10d@." name hit_pct
      (Flow.Table.cache_evictions table)
      (Flow.Table.cache_resets table)
  in
  run Flow.Table.Clock "clock";
  run Flow.Table.Reset "reset"

let e2 () =
  e2_sizes [ 10; 100; 1000; 4000 ] ();
  e2_overflow ()

(* small sizes + a hard pass/fail bound, cheap enough for CI *)
let e2_smoke () = e2_sizes ~smoke:true [ 10; 100 ] ()

(* CI gate for the parallel compiler: compile_all on 2 domains must
   produce exactly the sequential output, and must not be slower than
   sequential beyond a headroom that absorbs lock overhead and
   single-CPU hosts (where two domains time-share one core) *)
let e1_smoke () =
  header "E1 smoke — parallel compile_all: equality + no-slower gate";
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let switches = Topo.Topology.switch_ids topo in
  let pol = allowlist_policy topo 8 in
  let time_with ~domains =
    let pool = Util.Pool.create ~domains () in
    let best = ref infinity in
    let result = ref [] in
    (* best of 3 so a GC pause or scheduler hiccup cannot fail CI *)
    for _ = 1 to 3 do
      Netkat.Fdd.clear_cache ();
      let compiled, t =
        wall (fun () -> Netkat.Local.compile_all ~pool ~switches pol)
      in
      result := compiled;
      if t < !best then best := t
    done;
    Util.Pool.shutdown pool;
    (!result, !best)
  in
  let seq, seq_t = time_with ~domains:1 in
  let par, par_t = time_with ~domains:2 in
  let count rs = List.fold_left (fun a (_, r) -> a + List.length r) 0 rs in
  pf "sequential: %d rules in %.2f ms; 2 domains: %d rules in %.2f ms@."
    (count seq) (ms seq_t) (count par) (ms par_t);
  record ~experiment:"e1-smoke" ~metric:"fattree:4/acl8/sequential-ms"
    (ms seq_t);
  record ~experiment:"e1-smoke" ~metric:"fattree:4/acl8/domains-2-ms"
    (ms par_t);
  if par <> seq then begin
    pf "SMOKE FAILURE: 2-domain compile_all diverges from sequential@.";
    exit 1
  end;
  if par_t > (seq_t *. 1.25) +. 2e-3 then begin
    pf "SMOKE FAILURE: 2 domains took %.2f ms vs sequential %.2f ms \
        (> 1.25x + 2 ms)@."
      (ms par_t) (ms seq_t);
    exit 1
  end
  else
    pf "smoke ok: identical rules; 2-domain time within the gate \
        (<= 1.25x + 2 ms)@."

(* ------------------------------------------------------------------ *)
(* E3 — simulator throughput vs topology size *)

(* one E3 run: route the topology, generate 32 long-lived flows, drain
   the simulation, return the network and the run wall time *)
let e3_run ~engine spec =
  let topo = Topo.Gen.of_spec spec in
  let net = Zen.create ~sim_engine:engine topo in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  let prng = Util.Prng.create 9 in
  let _ =
    (* fixed per-flow ports: long-lived 5-tuples, so the exact-match
       cache can do its job (one miss per flow per switch) *)
    Dataplane.Traffic.random_pairs ~fixed_ports:true (Zen.network net) ~prng
      ~flows:32 ~rate_pps:500.0 ~pkt_size:1000 ~stop:1.0
  in
  let events, t = wall (fun () -> Zen.run net) in
  (net, events, t)

(* everything observable about a finished E3 run — the two queue
   engines must agree on all of it *)
let e3_signature net events =
  let stats = Dataplane.Network.stats (Zen.network net) in
  ( events, stats.delivered, stats.forwarded, stats.dropped_queue,
    stats.dropped_ttl, stats.dropped_policy )

let e3 () =
  header "E3 — simulator packet throughput vs topology size";
  pf "expected shape: events/sec roughly constant (queue-bound), so pkts/sec@.";
  pf "falls with path length; larger topologies cost more per delivered packet.@.";
  pf "The timing-wheel engine files dense near-future events in O(1) and should@.";
  pf "beat the binary heap; both engines produce the identical simulation.@.";
  pf "Long-lived flows should drive the per-switch exact-match cache hit rate@.";
  pf "toward 100%% (one miss per flow per switch).@.@.";
  pf "%-12s %8s %8s | %10s %10s | %12s %12s %7s | %9s@." "topology" "switches"
    "hosts" "delivered" "events" "wheel-ev/s" "heap-ev/s" "speedup" "cache-hit";
  pf "%s@." (String.make 106 '-');
  (* best of 5: one simulation run is short enough that GC pauses and
     scheduler noise dominate a single-shot measurement *)
  let best_run ~engine spec =
    let best = ref None in
    for _ = 1 to 5 do
      let (_, _, t) as r = e3_run ~engine spec in
      match !best with
      | Some (_, _, t') when t' <= t -> ()
      | _ -> best := Some r
    done;
    Option.get !best
  in
  List.iter
    (fun spec ->
      let net, events, wheel_t = best_run ~engine:`Wheel spec in
      let net_h, events_h, heap_t = best_run ~engine:`Heap spec in
      if e3_signature net events <> e3_signature net_h events_h then begin
        pf "E3 FAILURE: %s differs between wheel and heap engines@." spec;
        exit 1
      end;
      let stats = Dataplane.Network.stats (Zen.network net) in
      (* flow-cache hit rate aggregated over every switch's table *)
      let hits, misses =
        List.fold_left
          (fun (h, m) (sw : Dataplane.Network.switch) ->
            (h + Flow.Table.cache_hits sw.table,
             m + Flow.Table.cache_misses sw.table))
          (0, 0)
          (Dataplane.Network.switch_list (Zen.network net))
      in
      let hit_pct =
        100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses))
      in
      let wheel_eps = float_of_int events /. wheel_t in
      let heap_eps = float_of_int events_h /. heap_t in
      record ~experiment:"e3" ~metric:(spec ^ "/events-per-sec") wheel_eps;
      record ~experiment:"e3" ~metric:(spec ^ "/heap-events-per-sec") heap_eps;
      record ~experiment:"e3" ~metric:(spec ^ "/cache-hit-pct") hit_pct;
      pf "%-12s %8d %8d | %10d %10d | %12.0f %12.0f %6.2fx | %8.1f%%@." spec
        (Topo.Topology.switch_count (Zen.topology net))
        (Topo.Topology.host_count (Zen.topology net))
        stats.delivered events wheel_eps heap_eps (wheel_eps /. heap_eps)
        hit_pct)
    [ "ring:4"; "ring:16"; "ring:64"; "fattree:4"; "grid:6x6" ]

(* CI gate for the event-queue engines: the timing wheel must produce
   the exact simulation the heap does (event count, deliveries, drops)
   and must not be slower beyond scheduling noise *)
let e3_smoke () =
  header "E3 smoke — timing wheel vs heap: identical simulation + no-slower gate";
  let spec = "ring:16" in
  let time_engine engine =
    (* best of 3 so a GC pause or scheduler hiccup cannot fail CI *)
    let best = ref infinity and sig_ = ref None in
    for _ = 1 to 3 do
      let net, events, t = e3_run ~engine spec in
      let s = e3_signature net events in
      (match !sig_ with
       | None -> sig_ := Some s
       | Some prev when prev <> s ->
         pf "SMOKE FAILURE: %s not reproducible across repeats@." spec;
         exit 1
       | Some _ -> ());
      if t < !best then best := t
    done;
    (Option.get !sig_, !best)
  in
  let wheel_sig, wheel_t = time_engine `Wheel in
  let heap_sig, heap_t = time_engine `Heap in
  let events, delivered, _, _, _, _ = wheel_sig in
  pf "%s: %d events, %d delivered; wheel %.2f ms, heap %.2f ms@." spec events
    delivered (ms wheel_t) (ms heap_t);
  record ~experiment:"e3-smoke" ~metric:(spec ^ "/wheel-ms") (ms wheel_t);
  record ~experiment:"e3-smoke" ~metric:(spec ^ "/heap-ms") (ms heap_t);
  if wheel_sig <> heap_sig then begin
    pf "SMOKE FAILURE: wheel simulation diverges from heap simulation@.";
    exit 1
  end;
  if wheel_t > (heap_t *. 1.25) +. 2e-3 then begin
    pf "SMOKE FAILURE: wheel took %.2f ms vs heap %.2f ms (> 1.25x + 2 ms)@."
      (ms wheel_t) (ms heap_t);
    exit 1
  end
  else
    pf "smoke ok: identical simulations; wheel within the gate (<= 1.25x + 2 ms)@."

(* ------------------------------------------------------------------ *)
(* E4 — reactive vs proactive control *)

let e4 () =
  header "E4 — reactive (learning) vs proactive (routing) control";
  pf "expected shape: reactive pays control-channel latency on first packets@.";
  pf "(~ms flow setup) and keeps punting; proactive pre-installs everything@.";
  pf "and sees zero packet-ins, at the cost of pushing all rules up front.@.";
  pf "Either way the dataplane flow cache absorbs repeated headers (hit rate@.";
  pf "polled from the switches by the monitoring app).@.@.";
  pf "%-10s | %12s %12s %10s %10s %10s %10s %10s@." "mode" "first(us)"
    "steady(us)" "pkt-ins" "ctl-msgs" "ctl-KB" "rules" "cache-hit";
  pf "%s@." (String.make 95 '-');
  let run_mode name apps get_rules =
    let topo = Topo.Gen.linear ~switches:4 ~hosts_per_switch:2 () in
    let net = Zen.create topo in
    let monitor = Controller.Monitor.create ~period:0.5 () in
    let _rt =
      Zen.with_controller net (apps () @ [ Controller.Monitor.app monitor ])
    in
    Dataplane.Traffic.install_responders (Zen.network net) ;
    (* 20 pings between far hosts; first is the cold path *)
    let result =
      Dataplane.Traffic.ping (Zen.network net) ~src:1 ~dst:8 ~count:20
        ~interval:0.05
    in
    ignore (Zen.run ~until:(Zen.now net +. 3.0) net);
    let rtts = List.rev_map snd !(result.rtts) in
    let first = match rtts with r :: _ -> r | [] -> nan in
    let steady =
      match List.rev rtts with r :: _ -> r | [] -> nan
    in
    let stats = Dataplane.Network.stats (Zen.network net) in
    let pkt_ins =
      List.fold_left
        (fun acc (sw : Dataplane.Network.switch) -> acc + sw.packet_ins)
        0
        (Dataplane.Network.switch_list (Zen.network net))
    in
    let rules =
      List.fold_left
        (fun acc (sw : Dataplane.Network.switch) ->
          acc + Flow.Table.size sw.table)
        0
        (Dataplane.Network.switch_list (Zen.network net))
    in
    let hits, misses, _invalidations =
      Controller.Monitor.cache_summary monitor
    in
    let hit_pct =
      100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses))
    in
    record ~experiment:"e4" ~metric:(name ^ "/cache-hit-pct") hit_pct;
    pf "%-10s | %12.0f %12.0f %10d %10d %10.1f %10d %9.1f%%@." name
      (first *. 1e6) (steady *. 1e6) pkt_ins stats.control_msgs
      (float_of_int stats.control_bytes /. 1024.0)
      (get_rules rules) hit_pct
  in
  run_mode "reactive"
    (fun () -> [ Controller.Learning.app (Controller.Learning.create ()) ])
    (fun r -> r);
  run_mode "proactive"
    (fun () -> [ Controller.Routing.app (Controller.Routing.create ()) ])
    (fun r -> r)

(* ------------------------------------------------------------------ *)
(* E5 — failover convergence *)

let e5 () =
  header "E5 — failover: loss and convergence after a link failure";
  pf "expected shape: outage lasts about one control RTT + recompute; loss@.";
  pf "scales with flow rate x outage; rule churn = full tables (no deltas).@.@.";
  pf "%-12s %10s | %10s %12s %10s %10s@." "topology" "rate(pps)" "lost"
    "outage(ms)" "churn" "reinstalls";
  pf "%s@." (String.make 74 '-');
  List.iter
    (fun (spec, rate) ->
      let topo = Topo.Gen.of_spec spec in
      let net = Zen.create topo in
      let routing = Controller.Routing.create () in
      let _rt = Zen.with_controller net [ Controller.Routing.app routing ] in
      (* a flow crossing the network; fail a link on its path at t=1 *)
      let dst_host = Topo.Topology.host_count topo / 2 in
      let arrivals = ref [] in
      (Dataplane.Network.host (Zen.network net) dst_host).on_receive <-
        Some (fun _ -> arrivals := Zen.now net :: !arrivals);
      let sent =
        Dataplane.Traffic.cbr (Zen.network net)
          { (Dataplane.Traffic.default_flow ~src:1 ~dst:dst_host) with
            rate_pps = rate; pkt_size = 500; stop = 3.0 }
      in
      (* the path's first inter-switch link *)
      let path =
        Option.get
          (Topo.Path.shortest_path topo ~src:(Topo.Topology.Node.Host 1)
             ~dst:(Topo.Topology.Node.Host dst_host))
      in
      let sw_hop =
        List.find
          (fun (h : Topo.Path.hop) ->
            Topo.Topology.Node.is_switch h.node
            && Topo.Topology.Node.is_switch h.next)
          path
      in
      Dataplane.Sim.schedule (Dataplane.Network.sim (Zen.network net))
        ~delay:1.0 (fun () ->
          Dataplane.Network.fail_link (Zen.network net) sw_hop.node
            sw_hop.out_port);
      ignore (Zen.run ~until:4.0 net);
      let received = List.length !arrivals in
      (* outage = largest inter-arrival gap in a window around the
         failure (in-flight packets keep arriving briefly after t=1.0) *)
      let outage =
        let sorted = List.sort compare !arrivals in
        let rec max_gap best prev = function
          | [] -> best
          | t :: rest ->
            let best =
              if prev >= 0.95 && prev <= 1.5 then max best (t -. prev)
              else best
            in
            max_gap best t rest
        in
        match sorted with [] -> nan | t0 :: rest -> max_gap 0.0 t0 rest
      in
      pf "%-12s %10.0f | %10d %12.2f %10d %10d@." spec rate (!sent - received)
        (ms outage)
        (Controller.Routing.last_churn routing)
        (Controller.Routing.reinstalls routing - 1))
    [ ("ring:6", 500.0); ("ring:6", 2000.0); ("fattree:4", 1000.0) ]

(* ------------------------------------------------------------------ *)
(* E6 — traffic engineering on the WAN *)

let e6 () =
  header "E6 — TE: carried traffic under load (B4-like WAN, gravity demands)";
  pf "expected shape: all equal under light load; at/after saturation the@.";
  pf "multipath schemes carry 15-40%% more than oblivious ECMP, and greedy@.";
  pf "protects priority-0 demands (B4's property) at some fairness cost.@.@.";
  let topo = Topo.Gen.b4 ~hosts_per_switch:0 () in
  let prng = Util.Prng.create 4242 in
  let base =
    Te.Demand.gravity ~prng ~switches:(Topo.Topology.switch_ids topo)
      ~total_rate:100e9 ~priorities:3 ()
  in
  pf "%-6s %9s | %9s %9s %9s | %7s %7s | %8s@." "load" "offered" "ecmp-G"
    "maxmin-G" "greedy-G" "g/e" "jain-g" "p0-sat";
  pf "%s@." (String.make 82 '-');
  List.iter
    (fun scale ->
      let demands = Te.Demand.scale scale base in
      let e = Te.Ecmp.solve topo demands in
      let m = Te.Maxmin.solve topo demands in
      let g = Te.Greedy_kpath.solve topo demands in
      let p0 =
        let xs =
          List.filter_map
            (fun (en : Te.Alloc.entry) ->
              if en.demand.priority = 0 then Some (Te.Alloc.satisfaction en)
              else None)
            g.entries
        in
        Util.Stats.mean xs
      in
      pf "%-6.2f %8.1fG | %8.1fG %8.1fG %8.1fG | %6.2fx %7.2f | %8.2f@." scale
        (Te.Demand.total demands /. 1e9)
        (Te.Alloc.carried e /. 1e9)
        (Te.Alloc.carried m /. 1e9)
        (Te.Alloc.carried g /. 1e9)
        (Te.Alloc.carried g /. Te.Alloc.carried e)
        (Te.Alloc.fairness g) p0)
    [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ];
  pf "@.same sweep on Abilene (11 nodes):@.";
  let topo = Topo.Gen.abilene ~hosts_per_switch:0 () in
  let prng = Util.Prng.create 11 in
  let base =
    Te.Demand.gravity ~prng ~switches:(Topo.Topology.switch_ids topo)
      ~total_rate:100e9 ~priorities:3 ()
  in
  List.iter
    (fun scale ->
      let demands = Te.Demand.scale scale base in
      let e = Te.Ecmp.solve topo demands in
      let g = Te.Greedy_kpath.solve topo demands in
      pf "  load %.2f: ecmp %.1fG, greedy %.1fG (%.2fx)@." scale
        (Te.Alloc.carried e /. 1e9)
        (Te.Alloc.carried g /. 1e9)
        (Te.Alloc.carried g /. Te.Alloc.carried e))
    [ 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* E7 — verification cost *)

let e7 () =
  header "E7 — header-space verification cost vs network size";
  pf "expected shape: per-pair reachability is near-linear in path length x@.";
  pf "rules; the full matrix scales with host pairs; loop checks walk the@.";
  pf "entire header space from every host and dominate.@.@.";
  pf "%-12s %7s %7s %7s | %12s %12s %10s@." "topology" "switch" "hosts"
    "rules" "matrix(ms)" "loops(ms)" "explored";
  pf "%s@." (String.make 78 '-');
  List.iter
    (fun spec ->
      let topo = Topo.Gen.of_spec spec in
      let net = Zen.create topo in
      let rules = Zen.install_policy net (Netkat.Builder.routing_policy topo) in
      let snap = Zen.snapshot net in
      let matrix, mt = wall (fun () -> Verify.Reach.reachability_matrix snap) in
      let _loops, lt = wall (fun () -> Verify.Reach.loop_free snap) in
      let explored =
        List.fold_left
          (fun acc src ->
            acc
            + (Verify.Reach.walk snap ~src ~cube:Verify.Hsa.top ()).explored)
          0 (Topo.Topology.host_ids topo)
      in
      pf "%-12s %7d %7d %7d | %12.1f %12.1f %10d@." spec
        (Topo.Topology.switch_count topo)
        (Topo.Topology.host_count topo)
        rules (ms mt) (ms lt) explored;
      ignore matrix)
    [ "linear:8"; "fattree:2"; "fattree:4"; "waxman:16:3" ]

(* ------------------------------------------------------------------ *)
(* E8 — codec throughput *)

(* the deterministic frame set shared by e8 and e8-smoke *)
let e8_frames () =
  let mac i = Packet.Mac.of_host_id i and ip i = Packet.Ipv4.of_host_id i in
  Array.init 256 (fun i ->
    Packet.Frame.tcp_packet ~eth_src:(mac (i + 1)) ~eth_dst:(mac (i + 2))
      ~ip_src:(ip (i + 1)) ~ip_dst:(ip (i + 2)) ~tp_src:i ~tp_dst:80
      ~payload:(Bytes.make (64 + (i land 63)) 'x') ())

let e8 () =
  header "E8 — wire codec throughput (packets and control messages)";
  pf "expected shape: the single-pass encoder writes each frame in one walk@.";
  pf "over the layers; encoding into a pooled buffer also skips the result@.";
  pf "allocation and should be the fastest row.  Control messages reach@.";
  pf "millions of msg/s (the wire writer reuses one per-domain buffer).@.@.";
  let mac i = Packet.Mac.of_host_id i in
  let frames = e8_frames () in
  let encoded = Array.map Packet.Codec.encode frames in
  let iters = 200_000 in
  let (), enc_t =
    wall (fun () ->
      for i = 0 to iters - 1 do
        ignore (Packet.Codec.encode frames.(i land 255))
      done)
  in
  (* pooled variant: one scratch buffer reused across every frame *)
  let scratch =
    Bytes.create
      (Array.fold_left (fun a f -> max a (Packet.Frame.size f)) 0 frames)
  in
  let (), encp_t =
    wall (fun () ->
      for i = 0 to iters - 1 do
        ignore (Packet.Codec.encode_into frames.(i land 255) scratch 0)
      done)
  in
  let (), dec_t =
    wall (fun () ->
      for i = 0 to iters - 1 do
        ignore (Packet.Codec.decode encoded.(i land 255))
      done)
  in
  let bytes =
    Array.fold_left (fun a b -> a + Bytes.length b) 0 encoded * (iters / 256)
  in
  pf "%-22s | %12s %12s@." "codec" "ops/s" "MB/s";
  pf "%s@." (String.make 50 '-');
  let rate t = float_of_int iters /. t in
  let row name t =
    record ~experiment:"e8" ~metric:(name ^ "/ops-per-sec") (rate t);
    pf "%-22s | %12.0f %12.1f@." name (rate t)
      (float_of_int bytes /. t /. 1e6)
  in
  row "frame encode" enc_t;
  row "frame encode pooled" encp_t;
  row "frame decode" dec_t;
  (* control messages *)
  let fm =
    Openflow.Message.Flow_mod
      (Openflow.Message.add_flow ~priority:10
         ~pattern:{ Flow.Pattern.any with eth_dst = Some (mac 1) }
         ~actions:(Flow.Action.forward 2) ())
  in
  let fm_b = Openflow.Wire.encode ~xid:1 fm in
  let (), ofe_t =
    wall (fun () ->
      for _ = 1 to iters do
        ignore (Openflow.Wire.encode ~xid:1 fm)
      done)
  in
  let (), ofd_t =
    wall (fun () ->
      for _ = 1 to iters do
        ignore (Openflow.Wire.decode fm_b)
      done)
  in
  (* a 16-message batch amortizes the wire writer's per-send cost *)
  let batch = List.init 16 (fun i -> (i + 1, fm)) in
  let (), ofb_t =
    wall (fun () ->
      for _ = 1 to iters / 16 do
        ignore (Openflow.Wire.encode_batch batch)
      done)
  in
  let of_row name t iters_done len =
    let r = float_of_int iters_done /. t in
    record ~experiment:"e8" ~metric:(name ^ "/ops-per-sec") r;
    pf "%-22s | %12.0f %12.1f@." name r
      (float_of_int (len * iters_done) /. t /. 1e6)
  in
  of_row "flow_mod encode" ofe_t iters (Bytes.length fm_b);
  of_row "flow_mod decode" ofd_t iters (Bytes.length fm_b);
  of_row "flow_mod batch16" ofb_t (iters / 16 * 16) (Bytes.length fm_b)

(* CI gate for the pooled single-pass codecs: pooled output must be
   byte-identical to the allocating path and no slower *)
let e8_smoke () =
  header "E8 smoke — pooled encode: byte-equality + no-slower gate";
  let frames = e8_frames () in
  let scratch =
    Bytes.create
      (Array.fold_left (fun a f -> max a (Packet.Frame.size f)) 0 frames)
  in
  Array.iter
    (fun f ->
      let reference = Packet.Codec.encode f in
      let n = Packet.Codec.encode_into f scratch 0 in
      if n <> Bytes.length reference
         || not (Bytes.equal (Bytes.sub scratch 0 n) reference)
      then begin
        pf "SMOKE FAILURE: encode_into output differs from encode@.";
        exit 1
      end)
    frames;
  let fm =
    Openflow.Message.Flow_mod
      (Openflow.Message.add_flow ~priority:7 ~pattern:Flow.Pattern.any
         ~actions:(Flow.Action.forward 1) ())
  in
  let single = Openflow.Wire.encode ~xid:42 fm in
  if not (Bytes.equal (Openflow.Wire.encode_batch [ (42, fm) ]) single)
  then begin
    pf "SMOKE FAILURE: encode_batch singleton differs from encode@.";
    exit 1
  end;
  pf "byte-equality ok: 256 frames + wire batch match the allocating path@.";
  let iters = 100_000 in
  let best f =
    (* best of 3 so a GC pause cannot fail CI *)
    let b = ref infinity in
    for _ = 1 to 3 do
      let (), t = wall f in
      if t < !b then b := t
    done;
    !b
  in
  let alloc_t =
    best (fun () ->
      for i = 0 to iters - 1 do
        ignore (Packet.Codec.encode frames.(i land 255))
      done)
  in
  let pooled_t =
    best (fun () ->
      for i = 0 to iters - 1 do
        ignore (Packet.Codec.encode_into frames.(i land 255) scratch 0)
      done)
  in
  record ~experiment:"e8-smoke" ~metric:"alloc-ms" (ms alloc_t);
  record ~experiment:"e8-smoke" ~metric:"pooled-ms" (ms pooled_t);
  pf "allocating %.2f ms, pooled %.2f ms for %d encodes@." (ms alloc_t)
    (ms pooled_t) iters;
  if pooled_t > (alloc_t *. 1.25) +. 2e-3 then begin
    pf "SMOKE FAILURE: pooled encode slower than allocating (> 1.25x + 2 ms)@.";
    exit 1
  end
  else pf "smoke ok: pooled encode within the gate (<= 1.25x + 2 ms)@."

(* ------------------------------------------------------------------ *)
(* E9 — consistent updates: naive vs two-phase *)

(* the port of [sw] whose (possibly down) link leads to [nbr] *)
let port_toward topo sw nbr =
  Topo.Topology.ports topo (Topo.Topology.Node.Switch sw)
  |> List.find (fun p ->
    match Topo.Topology.link_via topo (Topo.Topology.Node.Switch sw) p with
    | Some l -> l.dst = Topo.Topology.Node.Switch nbr
    | None -> false)

(* unicast policy along the current shortest path h_src -> h_dst *)
let path_policy topo ~src ~dst =
  let path =
    Option.get
      (Topo.Path.shortest_path topo ~src:(Topo.Topology.Node.Host src)
         ~dst:(Topo.Topology.Node.Host dst))
  in
  Netkat.Syntax.big_union
    (List.filter_map
       (fun (h : Topo.Path.hop) ->
         match h.node with
         | Topo.Topology.Node.Host _ -> None
         | Topo.Topology.Node.Switch sw ->
           Some
             (Netkat.Syntax.big_seq
                [ Netkat.Syntax.at ~switch:sw;
                  Netkat.Syntax.filter
                    (Netkat.Syntax.conj
                       (Netkat.Syntax.test Packet.Fields.Eth_src
                          (Packet.Mac.of_host_id src))
                       (Netkat.Syntax.test Packet.Fields.Eth_dst
                          (Packet.Mac.of_host_id dst)));
                  Netkat.Syntax.forward h.out_port ]))
       path)

let e9 () =
  header "E9 — consistent updates: naive switch-by-switch vs two-phase";
  pf "expected shape: rerouting a live flow by rewriting tables one switch@.";
  pf "at a time drops packets while the network is a mix of old and new@.";
  pf "policy; two-phase versioned update loses nothing but transiently@.";
  pf "doubles table occupancy.@.@.";
  (* ring:4 — h1 -> h3 has two disjoint 2-hop switch paths (via s2 / s4) *)
  let make_policies topo =
    let via_s4 = port_toward topo 1 4 in
    Topo.Topology.fail_link topo (Topo.Topology.Node.Switch 1, via_s4);
    let old_pol = path_policy topo ~src:1 ~dst:3 in
    Topo.Topology.restore_link topo (Topo.Topology.Node.Switch 1, via_s4);
    let via_s2 = port_toward topo 1 2 in
    Topo.Topology.fail_link topo (Topo.Topology.Node.Switch 1, via_s2);
    let new_pol = path_policy topo ~src:1 ~dst:3 in
    Topo.Topology.restore_link topo (Topo.Topology.Node.Switch 1, via_s2);
    (old_pol, new_pol)
  in
  pf "%-12s | %8s %8s %8s | %10s %10s@." "strategy" "sent" "lost"
    "ttl-drop" "peak-rules" "flowmods";
  pf "%s@." (String.make 66 '-');
  let run name go =
    let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
    let old_pol, new_pol = make_policies topo in
    let net = Zen.create topo in
    let rt = Zen.with_controller net [] in
    let ctx = Controller.Runtime.ctx rt in
    let updater = Controller.Update.create ~drain:0.3 () in
    go ctx updater old_pol new_pol;
    ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
    let sent =
      Dataplane.Traffic.cbr (Zen.network net)
        { (Dataplane.Traffic.default_flow ~src:1 ~dst:3) with
          rate_pps = 2000.0; pkt_size = 500; start = Zen.now net;
          stop = Zen.now net +. 2.0 }
    in
    let update_at = Zen.now net +. 1.0 in
    Dataplane.Sim.schedule
      (Dataplane.Network.sim (Zen.network net))
      ~delay:1.0
      (fun () ->
        match name with
        | "naive" ->
          Controller.Update.naive updater ctx
            ~prng:(Util.Prng.create 99) ~max_jitter:0.05 new_pol
        | _ -> Controller.Update.two_phase updater ctx new_pol);
    ignore update_at;
    ignore (Zen.run ~until:(Zen.now net +. 3.5) net);
    let stats = Dataplane.Network.stats (Zen.network net) in
    let received = (Dataplane.Network.host (Zen.network net) 3).received in
    pf "%-12s | %8d %8d %8d | %10d %10d@." name !sent (!sent - received)
      stats.dropped_ttl
      (Controller.Update.peak_rules updater)
      updater.Controller.Update.installs
  in
  run "naive" (fun ctx updater old_pol _new ->
    Controller.Update.install_plain updater ctx old_pol);
  run "two-phase" (fun ctx updater old_pol _new ->
    Controller.Update.install updater ctx old_pol)

(* ------------------------------------------------------------------ *)
(* E10 — incremental (delta) routing updates *)

let e10 () =
  header "E10 — failover churn: full table re-push vs delta updates";
  pf "expected shape: one link failure affects a few destinations; the@.";
  pf "delta installer touches an order of magnitude fewer rules than a@.";
  pf "full re-push, with identical resulting reachability.@.@.";
  pf "%-14s | %10s %12s %12s | %12s@." "mode" "initial" "fail-churn"
    "restore-churn" "reachable";
  pf "%s@." (String.make 70 '-');
  let results =
    List.map
      (fun (name, incremental) ->
        let topo, info = Topo.Gen.fat_tree ~k:4 () in
        let net = Zen.create topo in
        let routing = Controller.Routing.create ~incremental () in
        let _rt = Zen.with_controller net [ Controller.Routing.app routing ] in
        let initial = Controller.Routing.last_churn routing in
        let core = List.hd info.core in
        Dataplane.Network.fail_link (Zen.network net)
          (Topo.Topology.Node.Switch core) 1;
        ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
        let fail_churn = Controller.Routing.last_churn routing in
        Dataplane.Network.restore_link (Zen.network net)
          (Topo.Topology.Node.Switch core) 1;
        ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
        let restore_churn = Controller.Routing.last_churn routing in
        let matrix = Verify.Reach.reachability_matrix (Zen.snapshot net) in
        let reachable = List.length (List.filter snd matrix) in
        pf "%-14s | %10d %12d %12d | %9d/%d@." name initial fail_churn
          restore_churn reachable (List.length matrix);
        (name, reachable))
      [ ("full", false); ("incremental", true) ]
  in
  match results with
  | [ (_, a); (_, b) ] ->
    pf "@.post-convergence reachability identical: %b@." (a = b)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* E11 — flow-table minimization *)

let e11 () =
  header "E11 — flow-table minimization (dead + redundant rule removal)";
  pf "expected shape: baseline-compiled tables shrink substantially (they@.";
  pf "carry duplicated and shadowed rules); FDD-compiled tables are already@.";
  pf "near-minimal; random tables shrink by whatever redundancy was drawn.@.@.";
  pf "%-34s | %8s %8s %8s@." "table" "before" "after" "saved";
  pf "%s@." (String.make 64 '-');
  let to_opt (rules : Netkat.Local.rule list) =
    List.map
      (fun (r : Netkat.Local.rule) ->
        { Flow.Optimize.priority = r.priority; pattern = r.pattern;
          actions = r.actions })
      rules
  in
  let row name rules =
    let before = List.length rules in
    let after = List.length (Flow.Optimize.minimize rules) in
    pf "%-34s | %8d %8d %7.0f%%@." name before after
      (100.0 *. float_of_int (before - after) /. float_of_int (max 1 before))
  in
  (* redundant unions through the naive compiler *)
  let dup_policy =
    Netkat.Syntax.big_union
      (List.concat
         (List.init 8 (fun _ ->
            List.init 8 (fun i ->
              Netkat.Syntax.seq
                (Netkat.Syntax.filter
                   (Netkat.Syntax.test Packet.Fields.Tp_dst (i + 1)))
                (Netkat.Syntax.forward ((i mod 3) + 1))))))
  in
  row "naive: 8x-duplicated ACL" (to_opt (Netkat.Naive.compile ~switch:1 dup_policy));
  let topo, _ = Topo.Gen.fat_tree ~k:4 () in
  row "naive: acl8 x routing (s9)"
    (to_opt (Netkat.Naive.compile ~switch:9 (allowlist_policy topo 8)));
  row "fdd: routing fat-tree (s9)"
    (to_opt (Netkat.Local.compile ~switch:9 (Netkat.Builder.routing_policy topo)));
  row "fdd: fw8-denylist (s9)"
    (to_opt (Netkat.Local.compile ~switch:9 (denylist_policy topo 8)));
  (* random tables: mostly-exact rules over a few fields, few actions *)
  let prng = Util.Prng.create 31 in
  let random_rules n =
    List.init n (fun i ->
      let pattern =
        match Util.Prng.int prng 4 with
        | 0 -> Flow.Pattern.any
        | 1 -> Flow.Pattern.of_field Packet.Fields.Tp_dst (Util.Prng.int prng 8)
        | 2 -> Flow.Pattern.of_field Packet.Fields.In_port (Util.Prng.int prng 4)
        | _ ->
          (match
             Flow.Pattern.conj
               (Flow.Pattern.of_field Packet.Fields.Tp_dst (Util.Prng.int prng 8))
               (Flow.Pattern.of_field Packet.Fields.In_port (Util.Prng.int prng 4))
           with
           | Some p -> p
           | None -> Flow.Pattern.any)
      in
      { Flow.Optimize.priority = n - i; pattern;
        actions = Flow.Action.forward (1 + Util.Prng.int prng 3) })
  in
  row "random: 500 rules, 3 actions" (random_rules 500)

(* ------------------------------------------------------------------ *)
(* E12 — TE allocations validated in the dataplane *)

let e12 () =
  header "E12 — analytic TE allocation vs packet-level simulation";
  pf "expected shape: realizing an allocation as per-subflow forwarding@.";
  pf "rules and replaying it at packet granularity reproduces the analytic@.";
  pf "throughput within CBR quantization (a few percent).@.@.";
  pf "%-10s | %10s %12s %12s %9s@." "scheme" "demands" "alloc(Mb/s)"
    "meas(Mb/s)" "accuracy";
  pf "%s@." (String.make 60 '-');
  (* miniature-capacity B4 so packet simulation is tractable *)
  let topo = Topo.Gen.b4 ~capacity:1e6 () in
  let prng = Util.Prng.create 12 in
  let demands =
    Te.Demand.gravity ~prng ~switches:(Topo.Topology.switch_ids topo)
      ~total_rate:8e6 ()
  in
  List.iter
    (fun (name, alloc) ->
      let m = Zen.Wan.validate ~subflows:4 ~pkt_size:250 ~duration:2.0 topo alloc in
      let total_alloc =
        List.fold_left (fun a (r : Zen.Wan.measurement) -> a +. r.allocated) 0.0 m
      in
      let total_meas =
        List.fold_left (fun a (r : Zen.Wan.measurement) -> a +. r.measured) 0.0 m
      in
      pf "%-10s | %10d %12.2f %12.2f %9.2f@." name (List.length m)
        (total_alloc /. 1e6) (total_meas /. 1e6) (Zen.Wan.accuracy m))
    [ ("greedy", Te.Greedy_kpath.solve topo demands);
      ("maxmin", Te.Maxmin.solve topo demands) ]

(* ------------------------------------------------------------------ *)
(* E13 — core-table state: destination routing vs label tunnels *)

let e13 () =
  header "E13 — core-table state: destination routing vs label-switched tunnels";
  pf "expected shape: destination routing keeps one rule per host at every@.";
  pf "switch, so core state grows with hosts; edge-to-edge tunnels keep one@.";
  pf "rule per tunnel in the core — constant in host count (the MPLS/@.";
  pf "segment-routing aggregation argument).@.@.";
  pf "%-22s %8s | %14s %14s | %14s %14s@." "topology" "hosts"
    "route-core" "route-edge" "tunnel-core" "tunnel-edge";
  pf "%s@." (String.make 96 '-');
  List.iter
    (fun hosts_per_leaf ->
      let leaves = 4 and spines = 2 in
      let mk () = Topo.Gen.leaf_spine ~leaves ~spines ~hosts_per_leaf () in
      (* routing *)
      let net_r = Zen.create (mk ()) in
      ignore
        (Zen.install_policy net_r (Netkat.Builder.routing_policy (Zen.topology net_r)));
      let table_size net sw =
        Flow.Table.size (Dataplane.Network.switch (Zen.network net) sw).table
      in
      let route_core = table_size net_r 1 in
      let route_edge = table_size net_r (spines + 1) in
      (* tunnels *)
      let net_t = Zen.create (mk ()) in
      let tunnels = Controller.Tunnel.create () in
      let _rt = Zen.with_controller net_t [ Controller.Tunnel.app tunnels ] in
      let tunnel_core = table_size net_t 1 in
      let tunnel_edge = table_size net_t (spines + 1) in
      pf "%-22s %8d | %14d %14d | %14d %14d@."
        (Printf.sprintf "leafspine:%d:%d" leaves spines)
        (leaves * hosts_per_leaf) route_core route_edge tunnel_core
        tunnel_edge)
    [ 2; 8; 32 ]

(* ------------------------------------------------------------------ *)
(* E14 — reliable transport: goodput vs window vs queue depth *)

let e14 () =
  header "E14 — reliable transport (go-back-N) goodput vs window and queue";
  pf "expected shape: goodput rises with window until the path is full@.";
  pf "(bandwidth-delay product), then flattens; past the queue's capacity@.";
  pf "larger windows add loss and retransmissions without adding goodput.@.@.";
  let run ?fault ~queue_depth ~window ~rto ~backoff ~total () =
    let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
    let net = Dataplane.Network.create ~queue_depth ?fault topo in
    let fdd = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
    List.iter
      (fun sw ->
        let id = Topo.Topology.Node.id sw in
        let table = (Dataplane.Network.switch net id).table in
        List.iter
          (fun (r : Netkat.Local.rule) ->
            Flow.Table.add table
              (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
                 ~actions:r.actions ()))
          (Netkat.Local.rules_of_fdd ~switch:id fdd))
      (Topo.Topology.switches topo);
    let c =
      Dataplane.Transport.start net ~src:1 ~dst:2 ~total ~window ~rto ~backoff
        ~max_retx:20_000 ()
    in
    ignore (Dataplane.Network.run ~until:120.0 net ());
    (c, net)
  in
  pf "%-8s %-8s | %12s %10s %10s@." "queue" "window" "goodput(Mb/s)"
    "retx" "q-drops";
  pf "%s@." (String.make 56 '-');
  List.iter
    (fun queue_depth ->
      List.iter
        (fun window ->
          let c, net =
            run ~queue_depth ~window ~rto:0.005 ~backoff:2.0 ~total:2000 ()
          in
          let s = Dataplane.Transport.stats c in
          pf "%-8d %-8d | %12.1f %10d %10d@." queue_depth window
            (Dataplane.Transport.goodput c /. 1e6)
            s.retransmissions
            (Dataplane.Network.stats net).dropped_queue)
        [ 1; 4; 16; 64 ])
    [ 8; 64 ];
  pf "@.with 20%% per-link loss (seed 77), queue 64, window 32 and the@.";
  pf "initial RTO set below the loaded RTT: the legacy fixed timer keeps@.";
  pf "re-offering whole windows while ACKs are still in flight; capped@.";
  pf "exponential backoff grows past the real RTT and retransmits far less.@.@.";
  pf "%-12s | %12s %10s %10s@." "rto-policy" "goodput(Mb/s)" "retx"
    "chaos-drops";
  pf "%s@." (String.make 52 '-');
  List.iter
    (fun (name, backoff) ->
      let fault = Dataplane.Fault.create ~seed:77 ~link_drop:0.2 () in
      let c, net =
        run ~fault ~queue_depth:64 ~window:32 ~rto:1e-4 ~backoff ~total:1000 ()
      in
      let s = Dataplane.Transport.stats c in
      pf "%-12s | %12.1f %10d %10d@." name
        (Dataplane.Transport.goodput c /. 1e6)
        s.retransmissions
        (Dataplane.Network.stats net).dropped_chaos;
      record ~experiment:"e14" ~metric:(name ^ "/retx-under-loss")
        (float_of_int s.retransmissions))
    [ ("fixed", 1.0); ("backoff-2x", 2.0) ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the hot kernels *)

let micro () =
  header "micro — Bechamel microbenchmarks (ns/run, OLS estimate)";
  let open Bechamel in
  let topo2 = fst (Topo.Gen.fat_tree ~k:2 ()) in
  let routing2 = Netkat.Builder.routing_policy topo2 in
  let table =
    Netkat.Local.compile_table ~switch:6 routing2
  in
  let hdr =
    Packet.Headers.tcp ~switch:6 ~in_port:1 ~src_host:1 ~dst_host:2 ~tp_src:9
      ~tp_dst:80
  in
  let wan = Topo.Gen.b4 ~hosts_per_switch:0 () in
  let frame =
    Packet.Frame.tcp_packet ~eth_src:(Packet.Mac.of_host_id 1)
      ~eth_dst:(Packet.Mac.of_host_id 2) ~ip_src:(Packet.Ipv4.of_host_id 1)
      ~ip_dst:(Packet.Ipv4.of_host_id 2) ~tp_src:1 ~tp_dst:2
      ~payload:(Bytes.make 512 'x') ()
  in
  let frame_bytes = Packet.Codec.encode frame in
  let frame_scratch = Bytes.create (Packet.Frame.size frame) in
  let wheel = Util.Timing_wheel.create () in
  let wheel_now = ref 0.0 in
  let prng = Util.Prng.create 3 in
  let tests =
    [ Test.make ~name:"fdd-compile-fattree2"
        (Staged.stage (fun () ->
           Netkat.Fdd.clear_cache ();
           ignore (Netkat.Fdd.of_policy routing2)));
      Test.make ~name:"table-lookup-17rules"
        (Staged.stage (fun () -> ignore (Flow.Table.lookup table hdr)));
      Test.make ~name:"table-lookup-17rules-linear"
        (Staged.stage (fun () -> ignore (Flow.Table.lookup_linear table hdr)));
      Test.make ~name:"dijkstra-b4"
        (Staged.stage (fun () ->
           ignore
             (Topo.Path.dijkstra wan
                ~weight:(fun l -> l.Topo.Topology.delay)
                ~src:(Topo.Topology.Node.Switch 1))));
      Test.make ~name:"heap-push-pop-64"
        (Staged.stage (fun () ->
           let h = Util.Heap.create () in
           for i = 1 to 64 do
             Util.Heap.push h (Util.Prng.float prng 1.0) i
           done;
           while not (Util.Heap.is_empty h) do
             ignore (Util.Heap.pop h)
           done));
      Test.make ~name:"wheel-push-pop-64"
        (* one long-lived wheel with monotonically advancing keys — the
           simulator's usage pattern (a fresh wheel per batch would be
           dominated by the slot-array allocation) *)
        (Staged.stage (fun () ->
           for i = 1 to 64 do
             wheel_now := !wheel_now +. Util.Prng.float prng 1e-4;
             Util.Timing_wheel.push wheel !wheel_now i
           done;
           while not (Util.Timing_wheel.is_empty wheel) do
             ignore (Util.Timing_wheel.pop wheel)
           done));
      Test.make ~name:"frame-encode-566B"
        (Staged.stage (fun () -> ignore (Packet.Codec.encode frame)));
      Test.make ~name:"frame-encode-pooled-566B"
        (Staged.stage (fun () ->
           ignore (Packet.Codec.encode_into frame frame_scratch 0)));
      Test.make ~name:"frame-decode-566B"
        (Staged.stage (fun () -> ignore (Packet.Codec.decode frame_bytes))) ]
  in
  let grouped = Test.make_grouped ~name:"zen" ~fmt:"%s/%s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.4) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  pf "%-28s | %14s@." "kernel" "ns/run";
  pf "%s@." (String.make 46 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
    match Analyze.OLS.estimates ols with
    | Some (t :: _) ->
      record ~experiment:"micro" ~metric:(name ^ "/ns-per-run") t;
      pf "%-28s | %14.1f@." name t
    | Some [] | None -> pf "%-28s | %14s@." name "?")

(* ------------------------------------------------------------------ *)
(* E9-chaos — delivery and recovery under control-plane chaos *)

(* tight keepalive/retransmit timers so outages are detected and
   recovered within the 5 s scenario horizon *)
let e9c_resilience =
  { Controller.Runtime.echo_period = 0.05; echo_miss_limit = 3;
    retx_timeout = 0.01; retx_backoff = 2.0; retx_cap = 0.1;
    selective_resync = false }

type e9c_result = {
  c_trace : string list;
  c_diverged : int list;
  c_sent : int;
  c_delivered : int;
  c_retransmits : int;
  c_resyncs : int;
  c_recoveries : float list;
}

(* the ISSUE acceptance scenario: a 6-ring under configurable
   control-channel chaos, one switch crash/restart and two link flaps,
   with CBR cross-traffic throughout *)
let e9c_run ~seed ~drop ~dup ~jitter () =
  let topo = Topo.Gen.ring ~switches:6 ~hosts_per_switch:1 () in
  let fault = Dataplane.Fault.create ~seed ~drop ~dup ~jitter () in
  let net = Dataplane.Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:e9c_resilience net
      [ Controller.Routing.app routing ]
  in
  Dataplane.Network.inject net
    [ Dataplane.Fault.Switch_outage { switch_id = 3; at = 0.6; duration = 0.8 };
      Dataplane.Fault.Link_flap
        { node = Topo.Topology.Node.Switch 1; port = 1; at = 0.9;
          duration = 0.5 };
      Dataplane.Fault.Link_flap
        { node = Topo.Topology.Node.Switch 4; port = 2; at = 1.2;
          duration = 0.4 } ];
  let senders =
    List.map
      (fun (src, dst) ->
        Dataplane.Traffic.cbr net
          { (Dataplane.Traffic.default_flow ~src ~dst) with
            rate_pps = 200.0; pkt_size = 200; start = 0.1; stop = 2.5;
            tp_src = Some 9000 })
      [ (1, 4); (2, 5); (6, 3) ]
  in
  ignore (Dataplane.Network.run ~until:5.0 net ());
  let rs = Controller.Runtime.resilience_stats rt in
  let key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions, r.cookie) in
  let keys rules = List.sort compare (List.map key rules) in
  let diverged =
    Dataplane.Network.switch_list net
    |> List.filter (fun (sw : Dataplane.Network.switch) ->
      keys (Flow.Table.rules sw.table)
      <> keys (Controller.Runtime.intended_rules rt ~switch_id:sw.sw_id))
    |> List.map (fun (sw : Dataplane.Network.switch) -> sw.sw_id)
  in
  { c_trace = Dataplane.Fault.events fault;
    c_diverged = diverged;
    c_sent = List.fold_left (fun acc s -> acc + !s) 0 senders;
    c_delivered = (Dataplane.Network.stats net).delivered;
    c_retransmits = rs.retransmits;
    c_resyncs = rs.resyncs;
    c_recoveries = Controller.Runtime.recovery_times rt }

let e9_chaos () =
  header "E9-chaos — delivery and recovery under control-plane chaos";
  pf "expected shape: with a clean control channel the crash/flap scenario@.";
  pf "still reconverges (keepalives detect the outage, resync repushes the@.";
  pf "intended table) with zero retransmits; as loss/duplication grow, the@.";
  pf "reliable stream retransmits until acked and every table still ends@.";
  pf "equal to intended state, at a bounded recovery-time cost.@.@.";
  pf "%-22s | %7s %9s %7s %6s %8s %8s %6s@." "config" "sent" "delivered"
    "ratio" "retx" "resyncs" "p50-rec" "conv";
  pf "%s@." (String.make 86 '-');
  List.iter
    (fun (name, drop, dup, jitter) ->
      let r = e9c_run ~seed:1005 ~drop ~dup ~jitter () in
      let ratio =
        if r.c_sent = 0 then 0.0
        else float_of_int r.c_delivered /. float_of_int r.c_sent
      in
      let p50 =
        match r.c_recoveries with
        | [] -> 0.0
        | ts -> Util.Stats.percentile ts 50.0
      in
      pf "%-22s | %7d %9d %6.1f%% %6d %8d %7.3fs %6s@." name r.c_sent
        r.c_delivered (100.0 *. ratio) r.c_retransmits r.c_resyncs p50
        (if r.c_diverged = [] then "yes" else "NO");
      record ~experiment:"e9-chaos" ~metric:(name ^ "/delivery-pct")
        (100.0 *. ratio);
      record ~experiment:"e9-chaos" ~metric:(name ^ "/retransmits")
        (float_of_int r.c_retransmits);
      record ~experiment:"e9-chaos" ~metric:(name ^ "/recovery-p50-ms")
        (p50 *. 1e3))
    [ ("zero-chaos", 0.0, 0.0, 0.0);
      ("drop-10", 0.1, 0.0, 0.0);
      ("drop-20-dup-5-jit-1ms", 0.2, 0.05, 1e-3) ]

let e9_smoke () =
  header "E9 smoke — chaos determinism + reconvergence + delivery floor";
  let run () = e9c_run ~seed:1005 ~drop:0.2 ~dup:0.05 ~jitter:1e-3 () in
  let a = run () in
  let b = run () in
  let ratio =
    if a.c_sent = 0 then 0.0
    else float_of_int a.c_delivered /. float_of_int a.c_sent
  in
  pf "seed 1005: sent %d, delivered %d (%.1f%%), %d retx, %d resyncs, \
      %d recoveries, trace %d events@."
    a.c_sent a.c_delivered (100.0 *. ratio) a.c_retransmits a.c_resyncs
    (List.length a.c_recoveries) (List.length a.c_trace);
  record ~experiment:"e9-smoke" ~metric:"delivery-pct" (100.0 *. ratio);
  record ~experiment:"e9-smoke" ~metric:"retransmits"
    (float_of_int a.c_retransmits);
  if
    a.c_trace <> b.c_trace || a.c_sent <> b.c_sent
    || a.c_delivered <> b.c_delivered || a.c_retransmits <> b.c_retransmits
    || a.c_resyncs <> b.c_resyncs
  then begin
    pf "SMOKE FAILURE: same seed produced different runs@.";
    exit 1
  end;
  if a.c_diverged <> [] then begin
    pf "SMOKE FAILURE: switches %s diverged from intended state@."
      (String.concat ", " (List.map string_of_int a.c_diverged));
    exit 1
  end;
  if a.c_retransmits < 1 || a.c_resyncs < 1 || a.c_recoveries = [] then begin
    pf "SMOKE FAILURE: chaos did not exercise the resilience path@.";
    exit 1
  end;
  if ratio <= 0.5 then begin
    pf "SMOKE FAILURE: delivery ratio %.2f below the 0.5 floor@." ratio;
    exit 1
  end;
  pf "smoke ok: byte-identical trace across runs, reconverged, \
      delivery %.1f%% above the floor@."
    (100.0 *. ratio)

(* ------------------------------------------------------------------ *)
(* E15 — sharded parallel simulation: throughput + pinned equivalence *)

(* Fill flow tables by BFS next-hop toward every host, bypassing the
   NetKAT compiler: E15 measures the {e simulator}, and FDD compilation
   of full fat-tree routing dominates setup at k >= 8.  [table_of sw]
   supplies the table owning switch [sw] (plain or sharded). *)
let e15_install_routes topo table_of =
  List.iter
    (fun dst ->
      let pred = Topo.Path.bfs topo ~src:(Topo.Topology.Node.Host dst) in
      let pattern =
        Flow.Pattern.of_field Packet.Fields.Ip4_dst
          (Packet.Ipv4.of_host_id dst)
      in
      Hashtbl.iter
        (fun n (h : Topo.Path.hop) ->
          match n with
          | Topo.Topology.Node.Switch sw ->
            (* [h] is the hop that first reached [sw] from the
               destination side, so [h.in_port] points back toward
               [dst] *)
            Flow.Table.add (table_of sw)
              (Flow.Table.make_rule ~priority:100 ~pattern
                 ~actions:(Flow.Action.forward h.in_port) ())
          | _ -> ())
        pred)
    (Topo.Topology.host_ids topo)

(* staggered long-lived CBR pairs: tie-free (see Dataplane.Shard), so
   sharded and single-domain runs are byte-equivalent *)
let e15_specs topo ~flows ~rate_pps ~stop =
  let prng = Util.Prng.create 77 in
  let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
  Dataplane.Traffic.random_pair_specs ~fixed_ports:true
    ~stagger:(stop /. 4.0) ~prng ~host_ids ~flows ~rate_pps ~pkt_size:500
    ~stop ()

let e15_until stop = stop +. 0.1

(* single-domain reference run: same topo, routes and specs *)
let e15_run_single spec ~flows ~rate_pps ~stop =
  let topo = Topo.Gen.of_spec spec in
  let net = Dataplane.Network.create topo in
  e15_install_routes topo (fun sw -> (Dataplane.Network.switch net sw).table);
  List.iter
    (fun s -> ignore (Dataplane.Traffic.cbr net s))
    (e15_specs topo ~flows ~rate_pps ~stop);
  let events, t =
    wall (fun () -> Dataplane.Network.run ~until:(e15_until stop) net ())
  in
  (Dataplane.Shard.net_signature topo [ net ], events, t)

let e15_run_sharded spec ~shards ~flows ~rate_pps ~stop =
  let topo = Topo.Gen.of_spec spec in
  let t = Dataplane.Shard.create ~shards topo in
  e15_install_routes topo (fun sw ->
    (Dataplane.Network.switch (Dataplane.Shard.net_of_switch t sw) sw).table);
  List.iter
    (fun (s : Dataplane.Traffic.flow_spec) ->
      ignore (Dataplane.Traffic.cbr (Dataplane.Shard.net_of_host t s.src) s))
    (e15_specs topo ~flows ~rate_pps ~stop);
  let pool = Util.Pool.create ~domains:shards () in
  let events, wall_t =
    wall (fun () -> Dataplane.Shard.run ~until:(e15_until stop) ~pool t)
  in
  Util.Pool.shutdown pool;
  (Dataplane.Shard.signature t, events, wall_t, t)

let e15 () =
  header "E15 — sharded parallel simulation: events/s vs shard count";
  pf "expected shape: observable results (delivery counters, tables, port@.";
  pf "stats) byte-equal at every shard count; events/s scales with shards on@.";
  pf "a multicore host.  Cross-shard handoffs add bookkeeping events, so the@.";
  pf "sharded event count exceeds the single-domain count by exactly the@.";
  pf "handoff overhead.  On a single-CPU host the shards time-share one core@.";
  pf "and events/s stays roughly flat — scaling rows need >= `shards` cores.@.@.";
  let full = Sys.getenv_opt "ZEN_E15_FULL" = Some "1" in
  let rows =
    [ ("fattree:4", 200, 500.0, 0.2, [ 1; 2; 4 ]);
      ("fattree:8", 1000, 200.0, 0.2, [ 1; 2; 4 ]) ]
    @ (if full then [ ("fattree:16", 1_000_000, 2.0, 0.5, [ 1; 2; 4; 8 ]) ]
       else [])
  in
  if not full then
    pf "(set ZEN_E15_FULL=1 for the fattree:16 / 1M-flow row)@.@.";
  pf "%-12s %8s %7s | %10s %12s %9s %8s %7s@." "topology" "flows" "shards"
    "events" "events/s" "handoffs" "windows" "equal";
  pf "%s@." (String.make 84 '-');
  List.iter
    (fun (spec, flows, rate_pps, stop, shard_counts) ->
      let ref_sig, ref_events, ref_t =
        e15_run_single spec ~flows ~rate_pps ~stop
      in
      pf "%-12s %8d %7s | %10d %12.0f %9s %8s %7s@." spec flows "-" ref_events
        (float_of_int ref_events /. ref_t) "-" "-" "-";
      record ~experiment:"e15" ~metric:(spec ^ "/single-events-per-sec")
        (float_of_int ref_events /. ref_t);
      List.iter
        (fun shards ->
          let s, events, wall_t, t =
            e15_run_sharded spec ~shards ~flows ~rate_pps ~stop
          in
          let equal = s = ref_sig in
          pf "%-12s %8d %7d | %10d %12.0f %9d %8d %7s@." spec flows shards
            events
            (float_of_int events /. wall_t)
            (Dataplane.Shard.handoffs t)
            (Dataplane.Shard.rounds t)
            (if equal then "yes" else "NO");
          record ~experiment:"e15"
            ~metric:(Printf.sprintf "%s/shards-%d/events-per-sec" spec shards)
            (float_of_int events /. wall_t);
          if not equal then begin
            pf "E15 FAILURE: %s at %d shards diverges from single-domain@."
              spec shards;
            exit 1
          end)
        shard_counts)
    rows

(* CI gate for the sharded simulator: a 2-shard run must produce the
   byte-identical observable signature of the single-domain engine, and
   the 1-shard sharded path must not be slower than the plain engine
   beyond scheduling headroom (the acceptance bound is 1.1x on a quiet
   multicore host; the gate allows 1.25x + 2 ms so CI noise and
   single-CPU runners cannot flake it) *)
let e15_smoke () =
  header "E15 smoke — sharded simulation: equality + no-slower gate";
  let spec = "fattree:4" and flows = 50 and rate_pps = 500.0 and stop = 0.2 in
  let best_single () =
    let best = ref None in
    for _ = 1 to 3 do
      let (_, _, t) as r = e15_run_single spec ~flows ~rate_pps ~stop in
      match !best with
      | Some (_, _, t') when t' <= t -> ()
      | _ -> best := Some r
    done;
    Option.get !best
  in
  let best_sharded ~shards =
    let best = ref None in
    for _ = 1 to 3 do
      let s, e, t, _ = e15_run_sharded spec ~shards ~flows ~rate_pps ~stop in
      match !best with
      | Some (_, _, t') when t' <= t -> ()
      | _ -> best := Some (s, e, t)
    done;
    Option.get !best
  in
  let ref_sig, ref_events, single_t = best_single () in
  let one_sig, _, one_t = best_sharded ~shards:1 in
  let two_sig, two_events, two_t = best_sharded ~shards:2 in
  pf "%s: single %d events in %.2f ms; 1-shard %.2f ms; 2-shard %d events \
      in %.2f ms@."
    spec ref_events (ms single_t) (ms one_t) two_events (ms two_t);
  record ~experiment:"e15-smoke" ~metric:(spec ^ "/single-ms") (ms single_t);
  record ~experiment:"e15-smoke" ~metric:(spec ^ "/shard-1-ms") (ms one_t);
  record ~experiment:"e15-smoke" ~metric:(spec ^ "/shard-2-ms") (ms two_t);
  record ~experiment:"e15-smoke" ~metric:(spec ^ "/shard-1-overhead-x")
    (one_t /. single_t);
  if two_sig <> ref_sig then begin
    pf "SMOKE FAILURE: 2-shard signature diverges from single-domain@.";
    exit 1
  end;
  if one_sig <> ref_sig then begin
    pf "SMOKE FAILURE: 1-shard signature diverges from single-domain@.";
    exit 1
  end;
  if one_t > (single_t *. 1.25) +. 2e-3 then begin
    pf "SMOKE FAILURE: 1-shard path took %.2f ms vs single-domain %.2f ms \
        (> 1.25x + 2 ms)@."
      (ms one_t) (ms single_t);
    exit 1
  end
  else
    pf "smoke ok: byte-identical signatures at 1 and 2 shards; 1-shard \
        overhead %.2fx within the gate (<= 1.25x + 2 ms)@."
      (one_t /. single_t)

(* ------------------------------------------------------------------ *)
(* E16 — link-level data chaos: route-around-crash + selective resync *)

(* tight control timers as in E9-chaos so the crash is detected and
   routed around well inside the scenario horizon *)
let e16_resilience ~selective =
  { Controller.Runtime.echo_period = 0.05; echo_miss_limit = 3;
    retx_timeout = 0.01; retx_backoff = 2.0; retx_cap = 0.1;
    selective_resync = selective }

type e16_result = {
  l_trace : string list;
  l_sent : int;
  l_delivered : int;
  l_chaos : int * int * int;  (* dropped, corrupted, reordered *)
  l_reroutes : int;
  l_diverged : int list;
}

(* a 6-ring under per-link data chaos with one switch crash mid-run:
   keepalives declare the switch down, routing recomputes around the
   dead node, and the restart re-handshakes and resyncs *)
let e16_run ~seed ~link_drop ~link_corrupt ~link_reorder () =
  let topo = Topo.Gen.ring ~switches:6 ~hosts_per_switch:1 () in
  let fault =
    Dataplane.Fault.create ~seed ~link_drop ~link_corrupt ~link_reorder ()
  in
  let net = Dataplane.Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:(e16_resilience ~selective:false)
      net
      [ Controller.Routing.app routing ]
  in
  Dataplane.Network.inject net
    [ Dataplane.Fault.Switch_outage { switch_id = 3; at = 0.6; duration = 0.8 } ];
  let senders =
    List.map
      (fun (src, dst) ->
        Dataplane.Traffic.cbr net
          { (Dataplane.Traffic.default_flow ~src ~dst) with
            rate_pps = 200.0; pkt_size = 200; start = 0.1; stop = 2.5;
            tp_src = Some 9000 })
      [ (1, 4); (2, 5); (6, 3) ]
  in
  ignore (Dataplane.Network.run ~until:5.0 net ());
  let s = Dataplane.Network.stats net in
  let key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions, r.cookie) in
  let keys rules = List.sort compare (List.map key rules) in
  let diverged =
    Dataplane.Network.switch_list net
    |> List.filter (fun (sw : Dataplane.Network.switch) ->
      keys (Flow.Table.rules sw.table)
      <> keys (Controller.Runtime.intended_rules rt ~switch_id:sw.sw_id))
    |> List.map (fun (sw : Dataplane.Network.switch) -> sw.sw_id)
  in
  { l_trace = Dataplane.Fault.events fault;
    l_sent = List.fold_left (fun acc se -> acc + !se) 0 senders;
    l_delivered = s.delivered;
    l_chaos = (s.dropped_chaos, s.corrupted, s.reordered);
    l_reroutes = Controller.Routing.reroutes routing;
    l_diverged = diverged }

(* a control-channel partition of a live switch keeps its table warm:
   the selective path snapshots the table over the unreliable channel
   and ships only the diff, instead of delete-all + a full re-add.
   Returns the resilience stats so callers can compare the measured
   selective bytes with the full-repush baseline priced on the same
   shadow table. *)
let e16_resync_bytes ~rules ~selective =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Dataplane.Network.create topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:(e16_resilience ~selective) net
      [ Controller.Routing.app routing ]
  in
  let ctx = Controller.Runtime.ctx rt in
  (* bulk up switch 2's table once routing has converged *)
  Dataplane.Sim.schedule (Dataplane.Network.sim net) ~delay:0.3 (fun () ->
    for i = 0 to rules - 1 do
      ctx.Controller.Api.send ~switch_id:2
        (Openflow.Message.Flow_mod
           (Openflow.Message.add_flow ~priority:(10 + i)
              ~pattern:(Flow.Pattern.of_field Packet.Fields.Tp_dst (1024 + i))
              ~actions:(Flow.Action.forward 1) ()))
    done);
  Dataplane.Network.inject net
    [ Dataplane.Fault.Ctl_outage { switch_id = 2; at = 1.0; duration = 0.8 } ];
  ignore (Dataplane.Network.run ~until:4.0 net ());
  Controller.Runtime.resilience_stats rt

let e16 () =
  header "E16 — link-level chaos: delivery, route-around-crash, resync cost";
  pf "expected shape: per-link drop/corrupt/reorder verdicts thin delivery@.";
  pf "but every corrupted frame is counted and discarded (never mis-parsed),@.";
  pf "the mid-run switch crash is detected by keepalives and routed around@.";
  pf "(reroutes >= 1), and every table reconverges to intended state.@.@.";
  pf "%-28s | %7s %9s %7s %7s %7s %7s %4s %5s@." "config" "sent" "delivered"
    "ratio" "drops" "corrupt" "reorder" "rr" "conv";
  pf "%s@." (String.make 94 '-');
  List.iter
    (fun (name, link_drop, link_corrupt, link_reorder) ->
      let r = e16_run ~seed:4242 ~link_drop ~link_corrupt ~link_reorder () in
      let drops, corrupts, reorders = r.l_chaos in
      let ratio =
        if r.l_sent = 0 then 0.0
        else float_of_int r.l_delivered /. float_of_int r.l_sent
      in
      pf "%-28s | %7d %9d %6.1f%% %7d %7d %7d %4d %5s@." name r.l_sent
        r.l_delivered (100.0 *. ratio) drops corrupts reorders r.l_reroutes
        (if r.l_diverged = [] then "yes" else "NO");
      record ~experiment:"e16" ~metric:(name ^ "/delivery-pct")
        (100.0 *. ratio);
      record ~experiment:"e16" ~metric:(name ^ "/reroutes")
        (float_of_int r.l_reroutes))
    [ ("clean", 0.0, 0.0, 0.0);
      ("link-drop-5", 0.05, 0.0, 0.0);
      ("drop-10-corrupt-2-reorder-5", 0.1, 0.02, 0.05) ];
  pf "@.selective resync on a warm table (control partition, switch alive):@.";
  pf "stats-snapshot + empty diff vs the delete-all + full re-add baseline.@.@.";
  pf "%-8s | %14s %16s %8s@." "rules" "selective(B)" "full-repush(B)"
    "saving";
  pf "%s@." (String.make 52 '-');
  List.iter
    (fun rules ->
      let rs = e16_resync_bytes ~rules ~selective:true in
      let saving =
        100.0
        *. (1.0
            -. (float_of_int rs.resync_bytes_selective
                /. float_of_int rs.resync_bytes_full))
      in
      pf "%-8d | %14d %16d %7.1f%%@." rules rs.resync_bytes_selective
        rs.resync_bytes_full saving;
      record ~experiment:"e16"
        ~metric:(Printf.sprintf "resync-%d-rules/saving-pct" rules)
        saving)
    [ 100; 1000 ]

(* CI gate: the chaotic run must be byte-identical across same-seed
   replays, the crash must be routed around with full reconvergence and
   a delivery floor, and selective resync must beat the full-repush
   baseline on a 1000-rule warm table *)
let e16_smoke () =
  header "E16 smoke — link-chaos determinism + route-around + resync saving";
  (* rates are per link and compound across the ring's multi-hop paths:
     7% drop+corrupt per link is ~30% end-to-end on a 5-link path,
     leaving headroom above the 0.5 delivery floor *)
  let run () =
    e16_run ~seed:4242 ~link_drop:0.05 ~link_corrupt:0.02 ~link_reorder:0.05 ()
  in
  let a = run () in
  let b = run () in
  let drops, corrupts, reorders = a.l_chaos in
  let ratio =
    if a.l_sent = 0 then 0.0
    else float_of_int a.l_delivered /. float_of_int a.l_sent
  in
  pf "seed 4242: sent %d, delivered %d (%.1f%%), %d/%d/%d \
      drop/corrupt/reorder, %d reroutes, trace %d events@."
    a.l_sent a.l_delivered (100.0 *. ratio) drops corrupts reorders
    a.l_reroutes (List.length a.l_trace);
  record ~experiment:"e16-smoke" ~metric:"delivery-pct" (100.0 *. ratio);
  record ~experiment:"e16-smoke" ~metric:"reroutes"
    (float_of_int a.l_reroutes);
  if
    a.l_trace <> b.l_trace || a.l_sent <> b.l_sent
    || a.l_delivered <> b.l_delivered || a.l_chaos <> b.l_chaos
    || a.l_reroutes <> b.l_reroutes
  then begin
    pf "SMOKE FAILURE: same seed produced different runs@.";
    exit 1
  end;
  if drops = 0 || corrupts = 0 || reorders = 0 then begin
    pf "SMOKE FAILURE: a link-chaos verdict kind never fired@.";
    exit 1
  end;
  if a.l_reroutes < 1 then begin
    pf "SMOKE FAILURE: the crash was never routed around@.";
    exit 1
  end;
  if a.l_diverged <> [] then begin
    pf "SMOKE FAILURE: switches %s diverged from intended state@."
      (String.concat ", " (List.map string_of_int a.l_diverged));
    exit 1
  end;
  if ratio <= 0.5 then begin
    pf "SMOKE FAILURE: delivery ratio %.2f below the 0.5 floor@." ratio;
    exit 1
  end;
  let rs = e16_resync_bytes ~rules:1000 ~selective:true in
  record ~experiment:"e16-smoke" ~metric:"resync-selective-bytes"
    (float_of_int rs.resync_bytes_selective);
  record ~experiment:"e16-smoke" ~metric:"resync-full-bytes"
    (float_of_int rs.resync_bytes_full);
  if rs.selective_resyncs < 1 then begin
    pf "SMOKE FAILURE: control partition never triggered a selective \
        resync@.";
    exit 1
  end;
  if
    not
      (rs.resync_bytes_selective > 0
       && rs.resync_bytes_selective < rs.resync_bytes_full)
  then begin
    pf "SMOKE FAILURE: selective resync (%d B) did not beat the \
        full-repush baseline (%d B)@."
      rs.resync_bytes_selective rs.resync_bytes_full;
    exit 1
  end;
  pf "smoke ok: byte-identical chaos trace, crash routed around, \
      reconverged, delivery %.1f%% above the floor, selective resync \
      %d B vs %d B full@."
    (100.0 *. ratio) rs.resync_bytes_selective rs.resync_bytes_full

(* ------------------------------------------------------------------ *)
(* E17 — incremental delta recompilation under policy churn *)

(* One churn edit: a switch-scoped deny guard (drop dst-host traffic to
   one TCP port at one switch) composed in front of the current policy.
   Composition happens at the FDD level (Fdd.seq on the cached diagram)
   so both paths measure recompilation + push, not a re-walk of the
   ~10K-clause base syntax tree — the diagrams are exactly those of
   [of_policy (Seq (guard, base))].  The guard touches exactly one
   switch: restricting the composed diagram to any other switch
   hash-conses back to the unedited node, which is what the delta
   layer's uid comparison detects. *)
let e17_guard ~sw ~mac ~port =
  Netkat.Syntax.filter
    (Netkat.Syntax.Not
       (Netkat.Syntax.conj
          (Netkat.Syntax.test Packet.Fields.Switch sw)
          (Netkat.Syntax.conj
             (Netkat.Syntax.test Packet.Fields.Eth_dst mac)
             (Netkat.Syntax.test Packet.Fields.Tp_dst port))))

(* seeded (switch, dst-mac, port) churn trace *)
let e17_edits ~seed ~edits topo =
  let prng = Util.Prng.create seed in
  let switches = Array.of_list (Topo.Topology.switch_ids topo) in
  let hosts = Array.of_list (Topo.Topology.host_ids topo) in
  List.init edits (fun i ->
    let sw = switches.(Util.Prng.int prng (Array.length switches)) in
    let h = hosts.(Util.Prng.int prng (Array.length hosts)) in
    (sw, Packet.Mac.of_host_id h, 1024 + i))

let e17_apply_edit fdd (sw, mac, port) =
  Netkat.Fdd.seq (Netkat.Fdd.of_policy (e17_guard ~sw ~mac ~port)) fdd

let e17_batch_bytes msgs =
  Bytes.length
    (Openflow.Wire.encode_batch (List.mapi (fun i m -> (i + 1, m)) msgs))

(* wire bytes of a full re-push: per switch, delete-all + every rule +
   barrier (what the non-incremental installers put on the channel) *)
let e17_full_bytes snapshot switches =
  List.fold_left
    (fun acc sw ->
      let rules =
        Option.value ~default:[] (Netkat.Delta.find snapshot sw)
      in
      let msgs =
        Openflow.Message.Flow_mod
          (Openflow.Message.delete_flow ~pattern:Flow.Pattern.any ())
        :: List.map
             (fun (r : Netkat.Local.rule) ->
               Openflow.Message.Flow_mod
                 (Openflow.Message.add_flow ~priority:r.priority
                    ~pattern:r.pattern ~actions:r.actions ()))
             rules
        @ [ Openflow.Message.Barrier_request ]
      in
      acc + e17_batch_bytes msgs)
    0 switches

(* wire bytes of the delta push: adds + strict deletes + barrier, only
   to the switches that changed *)
let e17_delta_bytes (result : Netkat.Delta.result) =
  List.fold_left
    (fun acc (_, change) ->
      match (change : Netkat.Delta.change) with
      | Netkat.Delta.Unchanged -> acc
      | Netkat.Delta.Changed { adds; deletes; _ } ->
        if adds = [] && deletes = [] then acc
        else
          acc
          + e17_batch_bytes
              (Controller.Api.delta_flow_mods ~adds ~deletes ()
               @ [ Openflow.Message.Barrier_request ]))
    0 result.changes

(* per-switch (priority, pattern, actions) triples of the live tables *)
let e17_tables net switches =
  List.map
    (fun sw ->
      ( sw,
        List.map
          (fun (r : Flow.Table.rule) -> (r.priority, r.pattern, r.actions))
          (Flow.Table.rules
             (Dataplane.Network.switch (Zen.network net) sw).table) ))
    switches

let e17_scratch_tables fdd switches =
  Netkat.Local.rules_of_fdd_all ~switches fdd
  |> List.map (fun (sw, rules) ->
    ( sw,
      List.map
        (fun (r : Netkat.Local.rule) -> (r.priority, r.pattern, r.actions))
        rules ))

let e17_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

(* drive [edits] churn edits through a live net, timing each install *)
let e17_timed_run ~k ~seed ~edits ~incremental =
  Netkat.Fdd.clear_cache ();
  let topo, _ = Topo.Gen.fat_tree ~k () in
  let base = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
  let net = Zen.create topo in
  let initial = Zen.install_fdd ~incremental net base in
  let lat = Array.make edits 0.0 in
  let fdd = ref base in
  List.iteri
    (fun i edit ->
      let next = e17_apply_edit !fdd edit in
      (* drain GC debt from the (untimed) FDD composition so collector
         slices don't land inside the timed install window *)
      Gc.major ();
      let _, t = wall (fun () -> ignore (Zen.install_fdd ~incremental net next)) in
      fdd := next;
      lat.(i) <- t)
    (e17_edits ~seed ~edits topo);
  (net, topo, !fdd, lat, initial)

(* pure accounting pass: flow-mod bytes, mods and skip counts per edit *)
let e17_accounting ~k ~seed ~edits =
  Netkat.Fdd.clear_cache ();
  let topo, _ = Topo.Gen.fat_tree ~k () in
  let switches = Topo.Topology.switch_ids topo in
  let base = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
  let r0 = Netkat.Delta.compile ~switches None base in
  let snap = ref r0.snapshot in
  let fdd = ref base in
  let full_b = ref 0 and delta_b = ref 0 and mods = ref 0 and skipped = ref 0 in
  List.iter
    (fun edit ->
      let next = e17_apply_edit !fdd edit in
      let result = Netkat.Delta.compile ~switches (Some !snap) next in
      full_b := !full_b + e17_full_bytes result.snapshot switches;
      delta_b := !delta_b + e17_delta_bytes result;
      mods := !mods + result.n_adds + result.n_deletes;
      skipped := !skipped + result.skipped;
      snap := result.snapshot;
      fdd := next)
    (e17_edits ~seed ~edits topo);
  (Netkat.Delta.total_rules !snap, !full_b, !delta_b, !mods, !skipped)

(* the headline single-rule-edit latency: one seeded edit applied to a
   freshly-installed deployment, best of [rounds] (fresh state each
   round — a repeated delta edit would be a no-op) *)
let e17_single ~k ~seed ~rounds ~incremental =
  let best = ref infinity in
  for _ = 1 to rounds do
    Netkat.Fdd.clear_cache ();
    let topo, _ = Topo.Gen.fat_tree ~k () in
    let base = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
    let net = Zen.create topo in
    ignore (Zen.install_fdd ~incremental net base);
    let edit = List.hd (e17_edits ~seed ~edits:1 topo) in
    let next = e17_apply_edit base edit in
    Gc.major ();
    let _, t = wall (fun () -> ignore (Zen.install_fdd ~incremental net next)) in
    if t < !best then best := t
  done;
  !best

let e17_scale ~k ~edits ~seed =
  let nick = Printf.sprintf "fattree-k%d" k in
  let (net_f, _, fdd_f, lat_f, initial) =
    e17_timed_run ~k ~seed ~edits ~incremental:false
  in
  let (net_d, topo_d, fdd_d, lat_d, _) =
    e17_timed_run ~k ~seed ~edits ~incremental:true
  in
  let switches = Topo.Topology.switch_ids topo_d in
  (* equivalence: delta-maintained tables must be byte-equal to both the
     full re-push path and a from-scratch compile of the final policy *)
  (* [fdd_f]/[fdd_d] are structurally identical but not physically equal
     (each run re-derives after a clear_cache), so equivalence is judged
     on the tables: delta-maintained ≡ full re-push ≡ from-scratch *)
  ignore fdd_f;
  let tf = e17_tables net_f switches and td = e17_tables net_d switches in
  let scratch = e17_scratch_tables fdd_d switches in
  let equal = td = tf && td = scratch in
  let total_rules, full_b, delta_b, mods, skipped =
    e17_accounting ~k ~seed ~edits
  in
  let stats lat =
    let s = Array.copy lat in
    Array.sort compare s;
    let total = Array.fold_left ( +. ) 0.0 lat in
    (total, e17_percentile s 0.5, e17_percentile s 0.99)
  in
  let tot_f, p50_f, p99_f = stats lat_f in
  let tot_d, p50_d, p99_d = stats lat_d in
  let single_f = e17_single ~k ~seed ~rounds:5 ~incremental:false in
  let single_d = e17_single ~k ~seed ~rounds:5 ~incremental:true in
  let speedup = single_f /. single_d in
  pf "%-12s | %6d rules, %d switches, %d edits (%d switch-skips)@." nick
    initial (List.length switches) edits skipped;
  pf "  %-10s | p50 %8.3f ms  p99 %8.3f ms  %8.1f edits/s  %10d B@." "full"
    (ms p50_f) (ms p99_f)
    (float_of_int edits /. tot_f)
    full_b;
  pf "  %-10s | p50 %8.3f ms  p99 %8.3f ms  %8.1f edits/s  %10d B@." "delta"
    (ms p50_d) (ms p99_d)
    (float_of_int edits /. tot_d)
    delta_b;
  pf "  single-rule edit: full %.3f ms vs delta %.3f ms — %.1fx speedup;@."
    (ms single_f) (ms single_d) speedup;
  pf "  %.0f delta rules/s applied; %.0fx fewer flow-mod bytes; tables \
      byte-equal: %b@."
    (float_of_int mods /. tot_d)
    (float_of_int full_b /. float_of_int (max 1 delta_b))
    equal;
  record ~experiment:"e17" ~metric:(nick ^ "/rules") (float_of_int total_rules);
  record ~experiment:"e17" ~metric:(nick ^ "/full-p50-ms") (ms p50_f);
  record ~experiment:"e17" ~metric:(nick ^ "/full-p99-ms") (ms p99_f);
  record ~experiment:"e17" ~metric:(nick ^ "/delta-p50-ms") (ms p50_d);
  record ~experiment:"e17" ~metric:(nick ^ "/delta-p99-ms") (ms p99_d);
  record ~experiment:"e17" ~metric:(nick ^ "/delta-edits-per-sec")
    (float_of_int edits /. tot_d);
  record ~experiment:"e17" ~metric:(nick ^ "/delta-rules-per-sec")
    (float_of_int mods /. tot_d);
  record ~experiment:"e17" ~metric:(nick ^ "/single-edit-full-ms")
    (ms single_f);
  record ~experiment:"e17" ~metric:(nick ^ "/single-edit-delta-ms")
    (ms single_d);
  record ~experiment:"e17" ~metric:(nick ^ "/single-edit-speedup-x") speedup;
  record ~experiment:"e17" ~metric:(nick ^ "/full-flowmod-bytes")
    (float_of_int full_b);
  record ~experiment:"e17" ~metric:(nick ^ "/delta-flowmod-bytes")
    (float_of_int delta_b);
  record ~experiment:"e17" ~metric:(nick ^ "/tables-equal")
    (if equal then 1.0 else 0.0);
  equal

let e17 () =
  header "E17 — incremental delta recompilation under policy churn";
  pf "expected shape: a single-rule edit on a fat-tree deployment leaves@.";
  pf "all but one switch uid-unchanged, so the delta path re-derives one@.";
  pf "table and pushes a handful of flow-mods while the full path@.";
  pf "recompiles and re-pushes everything — >=10x lower edit latency and@.";
  pf "orders of magnitude fewer bytes, with byte-equal tables.@.@.";
  let ok8 = e17_scale ~k:8 ~edits:32 ~seed:42 in
  let ok16 =
    match Sys.getenv_opt "ZEN_E17_FULL" with
    | Some ("1" | "true") -> e17_scale ~k:16 ~edits:8 ~seed:42
    | _ ->
      pf "(set ZEN_E17_FULL=1 for the fat-tree k=16 row)@.";
      true
  in
  if not (ok8 && ok16) then pf "WARNING: table equivalence violated@."

let e17_smoke () =
  header "E17 smoke — incremental ≡ full churn trace + latency/byte gates";
  (* gate 1: k=4 seeded churn trace, byte-equality at every step *)
  let k = 4 and edits = 8 and seed = 7 in
  Netkat.Fdd.clear_cache ();
  let topo_f, _ = Topo.Gen.fat_tree ~k () in
  let topo_d, _ = Topo.Gen.fat_tree ~k () in
  let switches = Topo.Topology.switch_ids topo_f in
  let base = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo_f) in
  let net_f = Zen.create topo_f and net_d = Zen.create topo_d in
  ignore (Zen.install_fdd ~incremental:false net_f base);
  ignore (Zen.install_fdd ~incremental:true net_d base);
  let fdd = ref base in
  List.iteri
    (fun i edit ->
      let next = e17_apply_edit !fdd edit in
      ignore (Zen.install_fdd ~incremental:false net_f next);
      ignore (Zen.install_fdd ~incremental:true net_d next);
      fdd := next;
      let tf = e17_tables net_f switches and td = e17_tables net_d switches in
      let scratch = e17_scratch_tables next switches in
      if td <> tf || td <> scratch then begin
        pf "SMOKE FAILURE: tables diverge after edit %d (delta=full: %b, \
            delta=scratch: %b)@."
          (i + 1) (td = tf) (td = scratch);
        exit 1
      end)
    (e17_edits ~seed ~edits topo_f);
  pf "churn trace: %d edits on fattree-k%d, tables byte-equal at every \
      step@."
    edits k;
  (* gate 2: single-edit latency, best of 3 — incremental must not be
     slower than 1.25x full (+2 ms scheduling noise allowance) *)
  let single ~incremental =
    let best = ref infinity in
    for _ = 1 to 3 do
      Netkat.Fdd.clear_cache ();
      let topo, _ = Topo.Gen.fat_tree ~k () in
      let b = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
      let net = Zen.create topo in
      ignore (Zen.install_fdd ~incremental net b);
      let edit = List.hd (e17_edits ~seed ~edits:1 topo) in
      let next = e17_apply_edit b edit in
      let _, t = wall (fun () -> ignore (Zen.install_fdd ~incremental net next)) in
      if t < !best then best := t
    done;
    !best
  in
  let full_t = single ~incremental:false in
  let delta_t = single ~incremental:true in
  pf "single edit (k=%d, best of 3): full %.3f ms, delta %.3f ms@." k
    (ms full_t) (ms delta_t);
  record ~experiment:"e17-smoke" ~metric:"single-edit-full-ms" (ms full_t);
  record ~experiment:"e17-smoke" ~metric:"single-edit-delta-ms" (ms delta_t);
  if delta_t > (full_t *. 1.25) +. 2e-3 then begin
    pf "SMOKE FAILURE: incremental single edit took %.3f ms vs full %.3f \
        ms (> 1.25x + 2 ms)@."
      (ms delta_t) (ms full_t);
    exit 1
  end;
  (* gate 3: 1 edit on a >=4000-rule fat-tree k=8 deployment must move
     >=2x fewer flow-mod bytes than the full re-push *)
  let total_rules, full_b, delta_b, _, skipped =
    e17_accounting ~k:8 ~seed:42 ~edits:1
  in
  pf "1-edit byte gate (k=8): %d rules deployed, full %d B vs delta %d B \
      (%d switches skipped)@."
    total_rules full_b delta_b skipped;
  record ~experiment:"e17-smoke" ~metric:"k8-full-bytes" (float_of_int full_b);
  record ~experiment:"e17-smoke" ~metric:"k8-delta-bytes"
    (float_of_int delta_b);
  if total_rules < 4000 then begin
    pf "SMOKE FAILURE: k=8 deployment only has %d rules (< 4000)@."
      total_rules;
    exit 1
  end;
  if delta_b * 2 > full_b then begin
    pf "SMOKE FAILURE: delta moved %d B vs full %d B (< 2x reduction)@."
      delta_b full_b;
    exit 1
  end;
  pf "smoke ok: equality at every step, single-edit %.2fx of full \
      (gate <= 1.25x + 2 ms), byte reduction %.0fx (gate >= 2x)@."
    (delta_t /. full_t)
    (float_of_int full_b /. float_of_int (max 1 delta_b))

(* ------------------------------------------------------------------ *)
(* E18 — adaptive window sizing vs the fixed min-lookahead barrier *)

(* [sites] 2-spine/2-leaf fat-tree cells (10 us links, 2 hosts per
   leaf), spines joined site-to-site: sites 0-1 by a 20 us metro link,
   every other pair long-haul at 1 ms.  Switch ids are contiguous per
   site, so the block partition maps one site per shard and the shard
   quotient distances are heterogeneous: the global min lookahead is
   the idle metro pair's 20 us, while a loaded long-haul site can run
   ~1 ms ahead before anything it posts can come back. *)
let e18_topo ~sites () =
  let topo = Topo.Topology.create () in
  let sw s i = Topo.Topology.Node.Switch ((s * 4) + i + 1) in
  for s = 0 to sites - 1 do
    for spine = 0 to 1 do
      for leaf = 2 to 3 do
        Topo.Gen.connect topo (sw s spine) (sw s leaf)
      done
    done
  done;
  let next_host = ref 1 in
  for s = 0 to sites - 1 do
    for leaf = 2 to 3 do
      for _ = 1 to 2 do
        let h = Topo.Topology.Node.Host !next_host in
        incr next_host;
        Topo.Gen.connect topo (sw s leaf) h
      done
    done
  done;
  for a = 0 to sites - 1 do
    for b = a + 1 to sites - 1 do
      let delay = if a = 0 && b = 1 then 20e-6 else 1e-3 in
      Topo.Gen.connect ~delay topo (sw a 0) (sw b 0)
    done
  done;
  topo

(* intra-site flow mix on the 37 us stagger lattice: no two chains ever
   share a timestamp, the precondition for exact equivalence *)
let e18_site_flows ~site ~flows ~rate_pps ~start ~stop =
  let h i = (site * 4) + i + 1 in
  let pairs = [| (0, 2); (1, 3); (2, 0); (3, 1); (0, 3); (1, 2) |] in
  List.init flows (fun i ->
    let a, b = pairs.(i mod Array.length pairs) in
    { (Dataplane.Traffic.default_flow ~src:(h a) ~dst:(h b)) with
      rate_pps; pkt_size = 200;
      start = start +. (float_of_int i *. 37e-6);
      stop })

(* dense chains in the [dense] sites, a trickle in the [light] ones,
   silence elsewhere: the fixed barrier steps the whole fabric at the
   min cross-shard lookahead while the loaded shards have far more
   safe slack than that *)
let e18_specs ~dense ~light ~stop =
  List.concat_map
    (fun site ->
      e18_site_flows ~site ~flows:6 ~rate_pps:5000.0
        ~start:(0.0107 +. (float_of_int site *. 13e-6)) ~stop)
    dense
  @ List.concat_map
      (fun site ->
        e18_site_flows ~site ~flows:2 ~rate_pps:500.0
          ~start:(0.0131 +. (float_of_int site *. 13e-6)) ~stop)
      light

type e18_obs = {
  e_sig : string;
  e_chaos : string list;
  e_events : int;
  e_rounds : int;
  e_stalls : int;
  e_steals : int;
  e_wall : float;
}

let e18_chaos seed =
  Dataplane.Fault.make_config ~seed ~link_drop:0.05 ~link_corrupt:0.02
    ~link_reorder:0.05 ()

let e18_run ~sites ~dense ~light ~stop ~until ?chaos how =
  let topo = e18_topo ~sites () in
  let specs = e18_specs ~dense ~light ~stop in
  match how with
  | `Single ->
    let fault = Option.map Dataplane.Fault.of_config chaos in
    let net = Dataplane.Network.create ?fault topo in
    e15_install_routes topo (fun sw -> (Dataplane.Network.switch net sw).table);
    List.iter (fun s -> ignore (Dataplane.Traffic.cbr net s)) specs;
    let events, t = wall (fun () -> Dataplane.Network.run ~until net ()) in
    { e_sig = Dataplane.Shard.net_signature topo [ net ];
      e_chaos =
        (match Dataplane.Network.fault net with
         | Some f -> List.sort compare (Dataplane.Fault.events f)
         | None -> []);
      e_events = events; e_rounds = 0; e_stalls = 0; e_steals = 0;
      e_wall = t }
  | `Sharded (shards, window, steal) ->
    let t = Dataplane.Shard.create ?fault_config:chaos ~shards topo in
    e15_install_routes topo (fun sw ->
      (Dataplane.Network.switch (Dataplane.Shard.net_of_switch t sw) sw).table);
    List.iter
      (fun (s : Dataplane.Traffic.flow_spec) ->
        ignore (Dataplane.Traffic.cbr (Dataplane.Shard.net_of_host t s.src) s))
      specs;
    let events, wall_t =
      wall (fun () -> Dataplane.Shard.run ~until ~window ~steal t)
    in
    { e_sig = Dataplane.Shard.signature t;
      e_chaos = List.sort compare (Dataplane.Shard.chaos_events t);
      e_events = events;
      e_rounds = Dataplane.Shard.rounds t;
      e_stalls = Dataplane.Shard.stalls t;
      e_steals = Dataplane.Shard.steals t;
      e_wall = wall_t }

(* controller-attached sharded run vs the single-domain reference:
   reactive routing app over the control channel, one mid-run link
   flap, tables must converge to the controller's intended state *)
let e18_ctl_run how =
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
  let n = Array.length host_ids in
  let specs =
    List.init (n / 2) (fun i ->
      { (Dataplane.Traffic.default_flow ~src:host_ids.(i)
           ~dst:host_ids.(n - 1 - i))
        with
        rate_pps = 1000.0; pkt_size = 200;
        start = 0.0307 +. (float_of_int i *. 37e-6);
        stop = 0.15 })
  in
  let flap =
    List.find_map
      (fun (l : Topo.Topology.link) ->
        if Topo.Topology.Node.is_switch l.src
           && Topo.Topology.Node.is_switch l.dst
        then
          Some
            (Dataplane.Fault.Link_flap
               { node = l.src; port = l.src_port; at = 0.057;
                 duration = 0.043 })
        else None)
      (Topo.Topology.links topo)
    |> Option.to_list
  in
  let until = 0.25 in
  let rule_key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions) in
  match how with
  | `Single ->
    let net = Dataplane.Network.create topo in
    let routing = Controller.Routing.create () in
    let rt =
      Controller.Runtime.create_and_handshake net
        [ Controller.Routing.app routing ]
    in
    List.iter (fun s -> ignore (Dataplane.Traffic.cbr net s)) specs;
    Dataplane.Network.inject net flap;
    ignore (Dataplane.Network.run ~until net ());
    let diverged =
      List.filter
        (fun sw ->
          List.sort compare
            (List.map rule_key
               (Flow.Table.rules (Dataplane.Network.switch net sw).table))
          <> List.sort compare
               (List.map rule_key
                  (Controller.Runtime.intended_rules rt ~switch_id:sw)))
        (Topo.Topology.switch_ids topo)
    in
    ( Dataplane.Shard.net_signature topo [ net ],
      (Dataplane.Network.stats net).delivered,
      (Dataplane.Network.stats net).control_msgs,
      diverged, 0 )
  | `Sharded shards ->
    let t = Dataplane.Shard.create ~shards topo in
    let routing = Controller.Routing.create () in
    let rt = Zen.with_controller_sharded t [ Controller.Routing.app routing ] in
    List.iter
      (fun (s : Dataplane.Traffic.flow_spec) ->
        ignore (Dataplane.Traffic.cbr (Dataplane.Shard.net_of_host t s.src) s))
      specs;
    Dataplane.Shard.inject t flap;
    ignore (Dataplane.Shard.run ~until t);
    let diverged =
      List.filter
        (fun sw ->
          List.sort compare
            (List.map rule_key
               (Flow.Table.rules
                  (Dataplane.Network.switch
                     (Dataplane.Shard.net_of_switch t sw) sw)
                    .table))
          <> List.sort compare
               (List.map rule_key
                  (Controller.Runtime.intended_rules rt ~switch_id:sw)))
        (Topo.Topology.switch_ids topo)
    in
    ( Dataplane.Shard.signature t,
      (Dataplane.Shard.stats t).delivered,
      (Dataplane.Shard.stats t).control_msgs,
      diverged,
      Dataplane.Shard.rounds t )

let e18 () =
  header
    "E18 — adaptive windows + stealing vs the fixed min-lookahead barrier";
  let sites = 4 and stop = 0.05 in
  let until = 0.06 in
  let e18_run ~sites ~stop ~until ?chaos how =
    e18_run ~sites ~dense:[ 2; 3 ] ~light:[ 0 ] ~stop ~until ?chaos how
  in
  pf "4-site fabric: dense CBR in the two long-haul sites (1 ms links), \
      a trickle at site 0; the idle metro pair pins the global \
      lookahead at 20 us@.";
  let single = e18_run ~sites ~stop ~until `Single in
  pf "%-28s %9s %9s %9s %9s@." "config" "events" "rounds" "stalls" "wall-ms";
  pf "%-28s %9d %9s %9s %9.1f@." "single-domain" single.e_events "-" "-"
    (ms single.e_wall);
  let results =
    List.concat_map
      (fun shards ->
        List.map
          (fun (wname, window) ->
            let r =
              e18_run ~sites ~stop ~until
                (`Sharded (shards, window, true))
            in
            let name = Printf.sprintf "shards-%d/%s" shards wname in
            pf "%-28s %9d %9d %9d %9.1f@." name r.e_events r.e_rounds
              r.e_stalls (ms r.e_wall);
            if r.e_sig <> single.e_sig then begin
              pf "FAILURE: %s diverged from the single-domain run@." name;
              exit 1
            end;
            record ~experiment:"e18" ~metric:(name ^ "/rounds")
              (float_of_int r.e_rounds);
            record ~experiment:"e18" ~metric:(name ^ "/stalls")
              (float_of_int r.e_stalls);
            (shards, wname, r))
          [ ("fixed", Util.Shard_sync.Fixed);
            ("adaptive", Util.Shard_sync.Adaptive) ])
      [ 1; 2; 4 ]
  in
  let find shards wname =
    let _, _, r =
      List.find (fun (s, w, _) -> s = shards && w = wname) results
    in
    r
  in
  let fx = find 4 "fixed" and ad = find 4 "adaptive" in
  let round_ratio = float_of_int fx.e_rounds /. float_of_int (max 1 ad.e_rounds)
  and stall_ratio =
    float_of_int fx.e_stalls /. float_of_int (max 1 ad.e_stalls)
  in
  record ~experiment:"e18" ~metric:"shards-4/round-reduction-x" round_ratio;
  record ~experiment:"e18" ~metric:"shards-4/stall-reduction-x" stall_ratio;
  pf "@.4-shard barrier rounds: fixed %d vs adaptive %d (%.1fx fewer); \
      stalls %d vs %d (%.1fx)@."
    fx.e_rounds ad.e_rounds round_ratio fx.e_stalls ad.e_stalls stall_ratio;
  (* link-level chaos replays byte-identically at every shard count *)
  let chaos = e18_chaos 4242 in
  let csingle = e18_run ~sites ~stop ~until ~chaos `Single in
  List.iter
    (fun shards ->
      let r =
        e18_run ~sites ~stop ~until ~chaos
          (`Sharded (shards, Util.Shard_sync.Adaptive, true))
      in
      if r.e_sig <> csingle.e_sig || r.e_chaos <> csingle.e_chaos then begin
        pf "FAILURE: chaos run diverged at %d shards@." shards;
        exit 1
      end)
    [ 1; 2; 4 ];
  pf "link chaos (drop/corrupt/reorder) byte-identical at 1/2/4 shards@.";
  (* reactive controller over the sharded control channel *)
  let sig_s, _, ctl_s, div_s, _ = e18_ctl_run `Single in
  let sig_p, del_p, ctl_p, div_p, rounds_p = e18_ctl_run (`Sharded 2) in
  if sig_s <> sig_p || div_s <> [] || div_p <> [] then begin
    pf "FAILURE: controller-attached sharded run diverged (sig %b, \
        diverged single %d, sharded %d)@."
      (sig_s = sig_p) (List.length div_s) (List.length div_p);
    exit 1
  end;
  record ~experiment:"e18" ~metric:"ctl/delivered" (float_of_int del_p);
  record ~experiment:"e18" ~metric:"ctl/control-msgs" (float_of_int ctl_p);
  record ~experiment:"e18" ~metric:"ctl/rounds" (float_of_int rounds_p);
  pf "controller-attached 2-shard run == single-domain: %d delivered, %d \
      control msgs (%d/%d), tables == intended on every switch, %d \
      rounds@."
    del_p ctl_p ctl_s ctl_p rounds_p

let e18_smoke () =
  header "E18 smoke — adaptive windows: equality + round-reduction gate";
  let sites = 2 and stop = 0.05 in
  let until = 0.06 in
  let e18_run ~sites ~stop ~until how =
    e18_run ~sites ~dense:[ 0 ] ~light:[ 1 ] ~stop ~until how
  in
  let single = e18_run ~sites ~stop ~until `Single in
  let fixed =
    e18_run ~sites ~stop ~until
      (`Sharded (2, Util.Shard_sync.Fixed, true))
  in
  let adaptive =
    e18_run ~sites ~stop ~until
      (`Sharded (2, Util.Shard_sync.Adaptive, true))
  in
  pf "2-site fabric: single %d events; fixed %d rounds / %d stalls; \
      adaptive %d rounds / %d stalls@."
    single.e_events fixed.e_rounds fixed.e_stalls adaptive.e_rounds
    adaptive.e_stalls;
  record ~experiment:"e18-smoke" ~metric:"fixed-rounds"
    (float_of_int fixed.e_rounds);
  record ~experiment:"e18-smoke" ~metric:"adaptive-rounds"
    (float_of_int adaptive.e_rounds);
  if fixed.e_sig <> single.e_sig then begin
    pf "SMOKE FAILURE: fixed-window sharded run diverged@.";
    exit 1
  end;
  if adaptive.e_sig <> single.e_sig then begin
    pf "SMOKE FAILURE: adaptive-window sharded run diverged@.";
    exit 1
  end;
  if
    float_of_int adaptive.e_rounds
    > 0.6 *. float_of_int fixed.e_rounds
  then begin
    pf "SMOKE FAILURE: adaptive took %d rounds vs fixed %d (> 0.6x gate)@."
      adaptive.e_rounds fixed.e_rounds;
    exit 1
  end;
  let sig_s, del_s, _, div_s, _ = e18_ctl_run `Single in
  let sig_p, del_p, _, div_p, _ = e18_ctl_run (`Sharded 2) in
  if sig_s <> sig_p || del_s <> del_p || del_p = 0 then begin
    pf "SMOKE FAILURE: controller-attached sharded run diverged \
        (delivered %d vs %d)@."
      del_s del_p;
    exit 1
  end;
  if div_s <> [] || div_p <> [] then begin
    pf "SMOKE FAILURE: switches diverged from intended tables \
        (single: %s; sharded: %s)@."
      (String.concat "," (List.map string_of_int div_s))
      (String.concat "," (List.map string_of_int div_p))
  ;
    exit 1
  end;
  pf "smoke ok: byte-equal at 2 shards, adaptive %d rounds vs fixed %d \
      (gate <= 0.6x), controller-attached run byte-equal with tables == \
      intended@."
    adaptive.e_rounds fixed.e_rounds

(* ------------------------------------------------------------------ *)
(* E19 — replicated controller: leader-lease failover and fencing *)

let e19_resilience =
  (* echo_miss_limit is high so control-channel loss cannot fake a
     switch outage mid-measurement (the failover clock, not the switch
     keepalive, is under test) *)
  { Controller.Runtime.echo_period = 0.05; echo_miss_limit = 8;
    retx_timeout = 0.01; retx_backoff = 2.0; retx_cap = 0.1;
    selective_resync = true }

let e19_routing_apps () =
  [ Controller.Routing.app (Controller.Routing.create ()) ]

type e19_result = {
  f_trace : string list;
  f_samples : float list;   (* failover detection -> all switches re-upped *)
  f_diverged : int list;
  f_counters : int * int * int;  (* control_msgs, control_bytes, delivered *)
  f_repl : int * int * int * int;  (* failovers, completed, repl_msgs, drops *)
  f_sent : int;
}

(* 6-ring under control-channel chaos with CBR crossing it; the leader
   crashes at 0.6 s and stays down, the standby's lease expires and it
   adopts every switch session, resyncing from its replicated shadow *)
let e19_run ~seed ~drop ~dup ~jitter () =
  let topo = Topo.Gen.ring ~switches:6 ~hosts_per_switch:1 () in
  let fault = Dataplane.Fault.create ~seed ~drop ~dup ~jitter () in
  let net = Dataplane.Network.create ~fault topo in
  let r =
    Controller.Replica.create ~resilience:e19_resilience ~replicas:2
      ~lease:0.15 net e19_routing_apps
  in
  Dataplane.Network.inject net
    [ Dataplane.Fault.Controller_outage
        { controller_id = 0; at = 0.6; duration = 60.0 } ];
  let senders =
    List.map
      (fun (src, dst) ->
        Dataplane.Traffic.cbr net
          { (Dataplane.Traffic.default_flow ~src ~dst) with
            rate_pps = 200.0; pkt_size = 200; start = 0.1; stop = 2.5;
            tp_src = Some 9000 })
      [ (1, 4); (2, 5); (6, 3) ]
  in
  ignore (Dataplane.Network.run ~until:5.0 net ());
  let s = Dataplane.Network.stats net in
  let rs = Controller.Replica.stats r in
  let result =
    { f_trace = Dataplane.Fault.events fault;
      f_samples = Controller.Replica.failover_samples r;
      f_diverged = Controller.Replica.diverged r;
      f_counters = (s.control_msgs, s.control_bytes, s.delivered);
      f_repl = (rs.failovers, rs.takeovers_completed, rs.repl_msgs,
                rs.repl_drops);
      f_sent = List.fold_left (fun acc se -> acc + !se) 0 senders }
  in
  Controller.Replica.shutdown r;
  result

(* split brain, chaos-free and fully deterministic: the leader is cut
   off the inter-controller channel only (its switch sessions keep
   working), a confident keepalive keeps it writing, and each leader
   incarnation schedules a distinct marker rule — the deposed leader's
   must be fenced out *)
let e19_split_brain () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Dataplane.Network.create topo in
  let incarnation = ref 0 in
  let mk_apps () =
    incr incarnation;
    let cookie = if !incarnation = 1 then 0xdead else 0xbeef in
    let marker =
      { (Controller.Api.default_app "marker") with
        switch_up =
          (fun ctx ~switch_id ~ports:_ ->
            if switch_id = 1 then
              Controller.Api.schedule ctx ~delay:1.5 (fun () ->
                Controller.Api.install ctx ~switch_id:1 ~priority:99 ~cookie
                  Flow.Pattern.any [])) }
    in
    e19_routing_apps () @ [ marker ]
  in
  let r =
    Controller.Replica.create
      ~resilience:{ e19_resilience with echo_miss_limit = 10_000 }
      ~replicas:2 ~lease:0.15 net mk_apps
  in
  Dataplane.Sim.schedule_at (Dataplane.Network.sim net) ~time:0.5 (fun () ->
    Controller.Replica.partition r ~controller_id:0);
  ignore (Dataplane.Network.run ~until:4.0 net ());
  let cookies =
    List.map
      (fun (ru : Flow.Table.rule) -> ru.cookie)
      (Flow.Table.rules (Dataplane.Network.switch net 1).table)
  in
  let fenced = (Dataplane.Network.stats net).fenced_writes in
  let diverged = Controller.Replica.diverged r in
  Controller.Replica.shutdown r;
  (fenced, List.mem 0xdead cookies, List.mem 0xbeef cookies, diverged)

(* replicas=1 must leave the single-controller path byte-identical: the
   degenerate Replica instantiates a plain runtime — no fence frames, no
   adoption, no heartbeats — so trace and counters match exactly *)
let e19_parity ~replicated () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Dataplane.Network.create topo in
  let lines = ref [] in
  Dataplane.Network.set_tracer net (fun time s ->
    lines := Printf.sprintf "%.9f %s" time s :: !lines);
  let switch_ids = Topo.Topology.switch_ids topo in
  let cleanup =
    if replicated then begin
      let r =
        Controller.Replica.create ~resilience:e19_resilience ~replicas:1
          ~switch_ids net e19_routing_apps
      in
      fun () -> Controller.Replica.shutdown r
    end
    else begin
      let rt =
        Controller.Runtime.create ~resilience:e19_resilience ~switch_ids net
          (e19_routing_apps ())
      in
      fun () -> Controller.Runtime.shutdown rt
    end
  in
  ignore (Dataplane.Network.run ~until:0.05 net ());
  Dataplane.Traffic.install_responders net;
  let result = Dataplane.Traffic.ping net ~src:1 ~dst:3 ~count:3 ~interval:0.02 in
  ignore (Dataplane.Network.run ~until:2.0 net ());
  cleanup ();
  let s = Dataplane.Network.stats net in
  ( List.rev !lines,
    (s.control_msgs, s.control_bytes, s.delivered),
    List.length !(result.rtts) )

let e19_chaos_levels =
  [ ("drop-10", 0.10, 0.0, 0.0);
    ("drop-20-dup-5-jitter", 0.20, 0.05, 1e-3) ]

let e19_seeds = List.init 12 (fun i -> 7000 + i)

let e19 () =
  header "E19 — replicated controller: failover time, divergence, fencing";
  pf "expected shape: the standby detects the expired lease within the@.";
  pf "stagger bound and re-adopts every switch in a handful of heartbeat@.";
  pf "intervals (selective resync makes warm tables nearly free); chaos@.";
  pf "stretches the tail but never yields divergence; a partitioned stale@.";
  pf "leader keeps writing and every such write is fenced out.@.@.";
  pf "%-22s | %5s %8s %8s %8s %5s@." "chaos" "runs" "p50(s)" "p95(s)"
    "p99(s)" "conv";
  pf "%s@." (String.make 66 '-');
  List.iter
    (fun (name, drop, dup, jitter) ->
      let results =
        List.map (fun seed -> e19_run ~seed ~drop ~dup ~jitter ()) e19_seeds
      in
      let samples = List.concat_map (fun r -> r.f_samples) results in
      let diverged = List.concat_map (fun r -> r.f_diverged) results in
      let complete =
        List.for_all
          (fun r ->
            let f, c, _, _ = r.f_repl in
            f = 1 && c = 1)
          results
      in
      pf "%-22s | %5d %8.3f %8.3f %8.3f %5s@." name (List.length results)
        (Util.Stats.percentile samples 50.0)
        (Util.Stats.percentile samples 95.0)
        (Util.Stats.percentile samples 99.0)
        (if diverged = [] && complete then "yes" else "NO");
      record ~experiment:"e19" ~metric:(name ^ "/failover-p50")
        (Util.Stats.percentile samples 50.0);
      record ~experiment:"e19" ~metric:(name ^ "/failover-p95")
        (Util.Stats.percentile samples 95.0);
      record ~experiment:"e19" ~metric:(name ^ "/failover-p99")
        (Util.Stats.percentile samples 99.0);
      record ~experiment:"e19" ~metric:(name ^ "/diverged")
        (float_of_int (List.length diverged)))
    e19_chaos_levels;
  let fenced, stale_landed, fresh_landed, sb_diverged = e19_split_brain () in
  pf "@.split brain: %d fenced writes, stale marker %s, new leader's \
      marker %s, %s@."
    fenced
    (if stale_landed then "LANDED" else "rejected")
    (if fresh_landed then "landed" else "MISSING")
    (if sb_diverged = [] then "converged" else "DIVERGED");
  record ~experiment:"e19" ~metric:"split-brain/fenced-writes"
    (float_of_int fenced);
  record ~experiment:"e19" ~metric:"split-brain/stale-installs"
    (if stale_landed then 1.0 else 0.0);
  let trace_p, counts_p, pings_p = e19_parity ~replicated:false () in
  let trace_r, counts_r, pings_r = e19_parity ~replicated:true () in
  let identical =
    trace_p = trace_r && counts_p = counts_r && pings_p = pings_r
  in
  pf "replicas=1 parity: %s (%d trace lines, %d pings)@."
    (if identical then "byte-identical" else "DIVERGED")
    (List.length trace_p) pings_p;
  record ~experiment:"e19" ~metric:"replicas1-parity"
    (if identical then 1.0 else 0.0)

(* CI gate: same seed twice -> byte-identical failover trace and
   counters; post-failover tables == the surviving leader's intended
   shadow; failover completes within a bounded number of heartbeat
   intervals; the split-brain scenario installs zero stale-leader rules;
   replicas=1 stays byte-identical to the plain runtime *)
let e19_smoke () =
  header "E19 smoke — failover determinism + convergence + fencing";
  let run () =
    e19_run ~seed:7007 ~drop:0.2 ~dup:0.05 ~jitter:1e-3 ()
  in
  let a = run () in
  let b = run () in
  let failovers, completed, repl_msgs, repl_drops = a.f_repl in
  pf "seed 7007: %d failovers (%d completed), %d repl msgs (%d dropped), \
      %d trace events, samples %s@."
    failovers completed repl_msgs repl_drops
    (List.length a.f_trace)
    (String.concat ", "
       (List.map (Printf.sprintf "%.3fs") a.f_samples));
  (match a.f_samples with
   | s :: _ -> record ~experiment:"e19-smoke" ~metric:"failover-s" s
   | [] -> ());
  if
    a.f_trace <> b.f_trace || a.f_counters <> b.f_counters
    || a.f_samples <> b.f_samples || a.f_repl <> b.f_repl
    || a.f_sent <> b.f_sent
  then begin
    pf "SMOKE FAILURE: same seed produced different failover runs@.";
    exit 1
  end;
  if failovers <> 1 || completed <> 1 then begin
    pf "SMOKE FAILURE: expected exactly one completed failover, got %d/%d@."
      failovers completed;
    exit 1
  end;
  if a.f_diverged <> [] then begin
    pf "SMOKE FAILURE: switches %s diverged from the surviving leader@."
      (String.concat ", " (List.map string_of_int a.f_diverged));
    exit 1
  end;
  let hb = 0.15 /. 3.0 in
  let bound = 40.0 *. hb in
  List.iter
    (fun s ->
      if s > bound then begin
        pf "SMOKE FAILURE: failover took %.3fs (> %.1f heartbeat \
            intervals)@."
          s (bound /. hb);
        exit 1
      end)
    a.f_samples;
  let fenced, stale_landed, fresh_landed, sb_diverged = e19_split_brain () in
  record ~experiment:"e19-smoke" ~metric:"split-brain-fenced"
    (float_of_int fenced);
  if fenced < 1 then begin
    pf "SMOKE FAILURE: the partitioned stale leader was never fenced@.";
    exit 1
  end;
  if stale_landed then begin
    pf "SMOKE FAILURE: a stale-leader rule landed despite the fence@.";
    exit 1
  end;
  if (not fresh_landed) || sb_diverged <> [] then begin
    pf "SMOKE FAILURE: the new leader's writes did not converge@.";
    exit 1
  end;
  let trace_p, counts_p, pings_p = e19_parity ~replicated:false () in
  let trace_r, counts_r, pings_r = e19_parity ~replicated:true () in
  if trace_p <> trace_r || counts_p <> counts_r || pings_p <> pings_r
  then begin
    pf "SMOKE FAILURE: replicas=1 diverged from the plain runtime@.";
    exit 1
  end;
  pf "smoke ok: byte-identical failover runs, tables == intended, \
      failover within %.0f heartbeats, %d stale writes fenced with zero \
      installed, replicas=1 byte-identical@."
    (bound /. hb) fenced

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e9-chaos", e9_chaos);
    ("e1-smoke", e1_smoke); ("e2-smoke", e2_smoke); ("e3-smoke", e3_smoke);
    ("e8-smoke", e8_smoke); ("e9-smoke", e9_smoke);
    ("e15-shard-smoke", e15_smoke); ("e16-smoke", e16_smoke);
    ("e17-smoke", e17_smoke); ("e18-smoke", e18_smoke);
    ("e19-smoke", e19_smoke); ("micro", micro) ]

let () =
  (* pull out a --json FILE pair; remaining args name experiments *)
  let json_file = ref None in
  let rec parse = function
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--json" :: [] ->
      prerr_endline "usage: --json FILE";
      exit 2
    | arg :: rest -> arg :: parse rest
    | [] -> []
  in
  let requested =
    match parse (List.tl (Array.to_list Sys.argv)) with
    | _ :: _ as names -> names
    | [] -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        pf "unknown experiment %S (have: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    requested;
  pf "@.total bench wall time: %.1f s@." (Unix.gettimeofday () -. t0);
  Option.iter write_json !json_file
